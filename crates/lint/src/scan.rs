//! Shared token-stream analyses: `#[cfg(test)]` module ranges (lint
//! rules only bind on production code) and the allow-comment grammar
//! that suppresses a single finding with a mandatory reason.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Comment, Lexed, TokKind, Token};

/// Token-index ranges (half-open) covered by `#[cfg(test)] mod … { … }`
/// blocks. Violations inside them are not reported: test code may
/// unwrap and subtract freely.
pub fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip the attribute (7 tokens: # [ cfg ( test ) ]), then
            // any further attributes, then expect `mod name {`.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            if j + 2 < tokens.len()
                && tokens[j].is_ident("mod")
                && tokens[j + 1].kind == TokKind::Ident
            {
                // Find the opening brace (inline `mod m {}`; a
                // `mod m;` declaration has no body here).
                let k = j + 2;
                if tokens[k].is_punct("{") {
                    let end = matching_brace(tokens, k);
                    ranges.push((i, end));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

/// Whether token `i` starts exactly `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// Skips a `#[...]` attribute starting at the `#`; returns the index
/// past the closing `]`.
pub fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    debug_assert!(tokens[i].is_punct("#"));
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct("[") {
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
    }
    j
}

/// Index one past the brace matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is_punct("{"));
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Whether token index `i` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i < b)
}

/// One parsed allow comment: `lint: allow(<rule>) — <reason>`.
///
/// The em-dash (or a plain ` - `) separating the rule from the reason
/// is mandatory: an allow with no reason is itself a violation. The
/// comment suppresses findings of `<rule>` on its own line and on the
/// line directly below (comment-above style).
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    pub line: u32,
    pub has_reason: bool,
}

/// Extracts every allow comment in the file.
pub fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            let tail = &rest[pos + "lint: allow(".len()..];
            let Some(close) = tail.find(')') else {
                break;
            };
            let rule = tail[..close].trim().to_string();
            let after = &tail[close + 1..];
            let after_trim = after.trim_start();
            let has_reason = ["—", "–", "- ", "-\t"]
                .iter()
                .any(|sep| after_trim.starts_with(sep))
                && after_trim
                    .trim_start_matches(['—', '–', '-', ' ', '\t'])
                    .chars()
                    .any(|ch| ch.is_alphanumeric());
            allows.push(Allow {
                rule,
                line: c.line,
                has_reason,
            });
            rest = after;
        }
    }
    allows
}

/// Applies allow comments to raw findings: suppressed findings are
/// dropped; allows with a missing reason are converted into findings of
/// their own (the gate demands *justified* suppressions).
pub fn apply_allows(file: &str, lexed: &Lexed, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let allows = parse_allows(&lexed.comments);
    diags.retain(|d| {
        !allows.iter().any(|a| {
            a.has_reason && a.rule == d.rule.name() && (a.line == d.line || a.line + 1 == d.line)
        })
    });
    for a in &allows {
        let rule = match a.rule.as_str() {
            "panic" => Rule::Panic,
            "time" => Rule::Time,
            "lock-order" => Rule::LockOrder,
            "wire-frame" => Rule::WireFrame,
            other => {
                diags.push(Diagnostic {
                    rule: Rule::Panic,
                    file: file.to_string(),
                    line: a.line,
                    message: format!(
                        "allow comment names unknown rule `{other}` (known: panic, time, lock-order, wire-frame)"
                    ),
                });
                continue;
            }
        };
        if !a.has_reason {
            diags.push(Diagnostic {
                rule,
                file: file.to_string(),
                line: a.line,
                message: format!(
                    "allow comment for `{}` is missing a reason: write `lint: allow({}) — <why this is safe>`",
                    a.rule, a.rule
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lexed = lex(src);
        let ranges = test_mod_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(in_ranges(&ranges, unwrap_idx));
        let c_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("c"))
            .expect("c token");
        assert!(!in_ranges(&ranges, c_idx));
    }

    #[test]
    fn allow_requires_reason() {
        let allows = parse_allows(
            &lex("// lint: allow(panic)\n// lint: allow(time) — data-independent order\n").comments,
        );
        assert_eq!(allows.len(), 2);
        assert!(!allows[0].has_reason);
        assert!(allows[1].has_reason);
        assert_eq!(allows[1].rule, "time");
    }

    #[test]
    fn ascii_dash_reason_accepted() {
        let allows =
            parse_allows(&lex("// lint: allow(lock-order) - intentionally nested\n").comments);
        assert!(allows[0].has_reason);
    }
}
