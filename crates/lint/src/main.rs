//! CLI for the repo-native lint gate.
//!
//! ```text
//! cargo run -p globe-lint -- --check          # human-readable, exit 1 on findings
//! cargo run -p globe-lint -- --check --json   # one JSON object per finding
//! ```
//!
//! The workspace root is discovered by walking up from the current
//! directory to the first `Cargo.toml` that declares `[workspace]`, so
//! the tool works from any subdirectory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut check = false;
    for arg in &args {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "globe-lint: repo-native static analysis (panic, time, lock-order, wire-frame)\n\n\
                     USAGE: globe-lint --check [--json]\n\n\
                     Exits 0 when the workspace is clean, 1 on findings, 2 on config errors.\n\
                     Suppress a finding with `// lint: allow(<rule>) — <reason>` (reason mandatory)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("globe-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !check {
        eprintln!("globe-lint: nothing to do; pass --check (try --help)");
        return ExitCode::from(2);
    }

    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("globe-lint: could not find a workspace root above the current directory");
            return ExitCode::from(2);
        }
    };

    match globe_lint::run(&root) {
        Ok(diags) if diags.is_empty() => {
            if json {
                println!("{}", globe_lint::diag::to_json(&diags));
            } else {
                println!("globe-lint: clean (panic, time, lock-order, wire-frame)");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            if json {
                println!("{}", globe_lint::diag::to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                eprintln!("globe-lint: {}", globe_lint::summarize(&diags));
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("globe-lint: config error: {e}");
            ExitCode::from(2)
        }
    }
}

/// First ancestor directory whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
