//! A minimal Rust lexer for the lint passes.
//!
//! The rules only need a token stream that is *correct about what is
//! code*: string literals, char literals, lifetimes, and comments must
//! never be mistaken for identifiers or operators (a `panic!` inside a
//! doc comment is not a violation; a `-` inside a string is not a
//! subtraction). Everything else — expressions, types, full grammar —
//! stays out of scope; the rules pattern-match on the token stream.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `self`).
    Ident,
    /// A lifetime (`'a`), distinguished from char literals.
    Lifetime,
    /// A numeric literal (`42`, `0xff`, `1.5e3`).
    Number,
    /// A string, raw string, byte string, or char literal.
    Literal,
    /// A punctuation token; multi-char operators arrive as one token
    /// (`::`, `->`, `=>`, `-=`, `..`, …).
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is the exact identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// One comment (line or block, doc or plain) with the line it starts on.
/// The allow-comment grammar (`lint: allow(<rule>) — <reason>`) is
/// matched against these.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed file: code tokens plus the comments that were skipped.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works.
const OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `src`, skipping (but recording) comments and never confusing
/// literal contents for code.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            '"' => {
                let (end, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let (end, newlines, kind) = scan_prefixed_literal(bytes, i);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            '\'' => {
                // Lifetime or char literal. `'\...'` and `'x'` are
                // chars; `'ident` not followed by a closing quote is a
                // lifetime.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    let (end, _) = scan_char(bytes, i);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = end;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'\'' && j > i + 1 {
                        // 'a' — single ident char closed by a quote.
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else if j == i + 1 && j < bytes.len() + 1 {
                        // Not an ident after the quote: 'x' where x is
                        // punctuation-ish, treat as char literal.
                        let (end, _) = scan_char(bytes, i);
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            text: String::new(),
                            line,
                        });
                        i = end;
                    } else {
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            text: src[i..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                        break; // range operator, not a float
                    }
                    if is_ident_char(b) || b == b'.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let mut matched = false;
                for op in OPS {
                    if src[i..].starts_with(op) {
                        out.tokens.push(Token {
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                            line,
                        });
                        i += op.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += c.len_utf8();
                }
            }
        }
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `r`/`b` at `i` starts a raw/byte string or byte char rather
/// than an identifier (`r"`, `r#"`, `b"`, `b'`, `br"`, `rb` is not a
/// thing, `br#"`).
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    match rest.first() {
        Some(b'r') => matches!(rest.get(1), Some(b'"') | Some(b'#')) && raw_has_quote(rest, 1),
        Some(b'b') => match rest.get(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(rest.get(2), Some(b'"') | Some(b'#')) && raw_has_quote(rest, 2),
            _ => false,
        },
        _ => false,
    }
}

/// For `r###"` shapes: hashes after `offset` must end in a quote.
fn raw_has_quote(rest: &[u8], offset: usize) -> bool {
    let mut j = offset;
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

/// Scans a plain `"..."` string starting at the opening quote. Returns
/// (index past the closing quote, newlines inside).
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Scans a `'x'` / `'\n'` char literal from the opening quote.
fn scan_char(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return (i + 1, 0),
            _ => i += 1,
        }
    }
    (i, 0)
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` from the prefix.
fn scan_prefixed_literal(bytes: &[u8], start: usize) -> (usize, u32, TokKind) {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
        if i < bytes.len() && bytes[i] == b'\'' {
            let (end, nl) = scan_char(bytes, i);
            return (end, nl, TokKind::Literal);
        }
        if i < bytes.len() && bytes[i] == b'"' {
            let (end, nl) = scan_string(bytes, i);
            return (end, nl, TokKind::Literal);
        }
    }
    // Raw (possibly byte-raw) string: count hashes, then scan to `"#…#`.
    debug_assert!(bytes[i] == b'r');
    i += 1;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    // bytes[i] == b'"'
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && j < bytes.len() && bytes[j] == b'#' {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return (j, newlines, TokKind::Literal);
            }
        }
        i += 1;
    }
    (i, newlines, TokKind::Literal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // panic!("not real")
            /* .unwrap() /* nested */ still comment */
            let s = "panic!(\"in a string\")";
            let r = r#"unwrap() in raw"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'q'; }");
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn comments_are_recorded_with_lines() {
        let src = "let a = 1;\n// lint: allow(panic) — reason\nb.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(panic)"));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let lexed = lex("a -> b => c :: d - e -= f .. g");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["->", "=>", "::", "-", "-=", ".."]);
    }

    #[test]
    fn lines_survive_multiline_strings() {
        let src = "let s = \"one\ntwo\";\nafter();\n";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after token");
        assert_eq!(after.line, 3);
    }
}
