//! Rule `wire-frame`: every `CoherenceMsg` frame must exist end-to-end.
//!
//! A frame that exists in the enum but is missing an encode arm, a
//! decode arm, proptest coverage, a docs mention, or a trace story is
//! drift waiting to ship: it compiles today and corrupts a peer (or
//! silently vanishes from the flight recorder) the first time someone
//! sends it. This rule parses the enum out of `core/src/messages.rs`
//! and cross-checks five surfaces:
//!
//! 1. encode arm with a literal tag byte (`buf.put_u8(N)`);
//! 2. decode arm mapping the *same* tag back (`N => Ok(CoherenceMsg::…)`);
//! 3. an arm in the wire proptest (`core/tests/proptest_messages.rs`);
//! 4. a mention in `docs/ARCHITECTURE.md`;
//! 5. an entry in `crates/lint/frame_trace.toml` naming the
//!    `ProtocolEvent` kinds that record the frame's effect (each kind
//!    verified to exist as a string in `core/src/trace.rs`), or an
//!    explicit exemption with a reason.

use std::collections::BTreeMap;

use crate::config::Doc;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Lexed, TokKind, Token};

const ENUM_NAME: &str = "CoherenceMsg";

/// Everything the cross-check needs, already loaded.
pub struct WireInputs<'a> {
    pub messages: &'a Lexed,
    pub messages_path: &'a str,
    pub proptest: &'a Lexed,
    pub proptest_path: &'a str,
    pub trace_src: &'a str,
    pub trace_path: &'a str,
    pub arch_src: &'a str,
    pub arch_path: &'a str,
    pub frame_cfg: &'a Doc,
    pub frame_cfg_path: &'a str,
}

pub fn check(inputs: &WireInputs) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let variants = enum_variants(&inputs.messages.tokens);
    if variants.is_empty() {
        diags.push(Diagnostic {
            rule: Rule::WireFrame,
            file: inputs.messages_path.to_string(),
            line: 0,
            message: format!(
                "could not find `enum {ENUM_NAME}` — the wire rule has nothing to check"
            ),
        });
        return diags;
    }

    let encode_tags = encode_tags(&inputs.messages.tokens);
    let decode_tags = decode_tags(&inputs.messages.tokens);
    let prop_mentions = path_mentions(&inputs.proptest.tokens);

    let frames = inputs.frame_cfg.section_arrays("frames");
    let exempt = inputs.frame_cfg.section_strings("exempt");

    for (variant, line) in &variants {
        let push = |diags: &mut Vec<Diagnostic>, file: &str, line: u32, message: String| {
            diags.push(Diagnostic {
                rule: Rule::WireFrame,
                file: file.to_string(),
                line,
                message,
            });
        };
        match (encode_tags.get(variant), decode_tags.get(variant)) {
            (None, _) => push(
                &mut diags,
                inputs.messages_path,
                *line,
                format!("frame `{variant}` has no encode arm with a literal tag byte"),
            ),
            (_, None) => push(
                &mut diags,
                inputs.messages_path,
                *line,
                format!(
                    "frame `{variant}` has no decode arm (`N => Ok({ENUM_NAME}::{variant} …)`)"
                ),
            ),
            (Some(e), Some(d)) if e != d => push(
                &mut diags,
                inputs.messages_path,
                *line,
                format!(
                    "frame `{variant}` encodes tag {e} but decodes tag {d} — round-trips corrupt"
                ),
            ),
            _ => {}
        }
        if !prop_mentions.contains(variant.as_str()) {
            push(
                &mut diags,
                inputs.proptest_path,
                0,
                format!(
                    "frame `{variant}` is not exercised by the wire proptest — add an \
                     `arb_msg` arm so round-trip/garbage/truncation properties cover it"
                ),
            );
        }
        if !mentions_word(inputs.arch_src, variant) {
            push(
                &mut diags,
                inputs.arch_path,
                0,
                format!("frame `{variant}` is not mentioned in ARCHITECTURE.md — document it in the frame catalogue"),
            );
        }
        match (frames.get(variant), exempt.get(variant)) {
            (Some(kinds), _) => {
                if kinds.is_empty() {
                    push(
                        &mut diags,
                        inputs.frame_cfg_path,
                        0,
                        format!("frame `{variant}` maps to an empty event list — name the kinds or move it to [exempt]"),
                    );
                }
                for kind in kinds {
                    if !inputs.trace_src.contains(&format!("\"{kind}\"")) {
                        push(
                            &mut diags,
                            inputs.trace_path,
                            0,
                            format!(
                                "frame `{variant}` claims trace event kind `{kind}`, but no such \
                                 kind string exists in trace.rs — the trace story has drifted"
                            ),
                        );
                    }
                }
            }
            (None, Some(reason)) => {
                if reason.trim().is_empty() {
                    push(
                        &mut diags,
                        inputs.frame_cfg_path,
                        0,
                        format!(
                            "frame `{variant}` is exempt from the trace check without a reason"
                        ),
                    );
                }
            }
            (None, None) => push(
                &mut diags,
                inputs.frame_cfg_path,
                0,
                format!(
                    "frame `{variant}` has no trace story: map it to ProtocolEvent kinds under \
                     [frames] in frame_trace.toml, or exempt it with a reason under [exempt]"
                ),
            ),
        }
    }

    // Reverse direction: config entries for frames that no longer exist.
    let names: Vec<&str> = variants.iter().map(|(v, _)| v.as_str()).collect();
    for stale in frames.keys().chain(exempt.keys()) {
        if !names.contains(&stale.as_str()) {
            diags.push(Diagnostic {
                rule: Rule::WireFrame,
                file: inputs.frame_cfg_path.to_string(),
                line: 0,
                message: format!("frame_trace.toml names `{stale}`, which is not a {ENUM_NAME} variant — remove the stale entry"),
            });
        }
    }

    // Duplicate tags corrupt decode regardless of per-variant pairing.
    let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (v, tag) in &encode_tags {
        by_tag.entry(*tag).or_default().push(v);
    }
    for (tag, vs) in by_tag {
        if vs.len() > 1 {
            diags.push(Diagnostic {
                rule: Rule::WireFrame,
                file: inputs.messages_path.to_string(),
                line: 0,
                message: format!("tag byte {tag} is encoded by multiple frames: {vs:?}"),
            });
        }
    }
    diags
}

/// `(variant name, line)` pairs of `enum CoherenceMsg`.
fn enum_variants(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.is_ident(ENUM_NAME)) {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("{") {
                j += 1;
            }
            let end = crate::scan::matching_brace(tokens, j);
            let mut k = j + 1;
            while k < end.saturating_sub(1) {
                if tokens[k].is_punct("#") {
                    k = crate::scan::skip_attribute(tokens, k);
                    continue;
                }
                if tokens[k].kind == TokKind::Ident {
                    out.push((tokens[k].text.clone(), tokens[k].line));
                    // Skip the variant payload to the next top-level comma.
                    let mut depth = 0i32;
                    k += 1;
                    while k < end {
                        let t = &tokens[k];
                        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                            depth += 1;
                        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                            depth -= 1;
                        } else if t.is_punct(",") && depth == 0 {
                            k += 1;
                            break;
                        }
                        k += 1;
                    }
                    continue;
                }
                k += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// variant → literal tag byte from encode arms: the first
/// `put_u8(<number>)` after a `CoherenceMsg::Variant` path.
fn encode_tags(tokens: &[Token]) -> BTreeMap<String, u64> {
    let mut tags = BTreeMap::new();
    let mut current: Option<String> = None;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.is_punct("::") && i > 0 && tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            // Any path resets the attribution; only CoherenceMsg paths
            // set a variant (other enums' encode arms must not inherit).
            current = if tokens[i - 1].is_ident(ENUM_NAME) {
                Some(tokens[i + 1].text.clone())
            } else {
                None
            };
        }
        if t.is_ident("put_u8")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Number)
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            if let (Some(v), Ok(tag)) = (current.take(), tokens[i + 2].text.parse::<u64>()) {
                tags.entry(v).or_insert(tag);
            }
        }
    }
    tags
}

/// variant → tag from decode arms: `N => Ok(CoherenceMsg::Variant`.
fn decode_tags(tokens: &[Token]) -> BTreeMap<String, u64> {
    let mut tags = BTreeMap::new();
    for i in 0..tokens.len() {
        if tokens[i].kind == TokKind::Number
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("=>"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("Ok"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident(ENUM_NAME))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 6).is_some_and(|t| t.kind == TokKind::Ident)
        {
            if let Ok(tag) = tokens[i].text.parse::<u64>() {
                tags.entry(tokens[i + 6].text.clone()).or_insert(tag);
            }
        }
    }
    tags
}

/// Variant names referenced as `CoherenceMsg::X` anywhere in the stream.
fn path_mentions(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident(ENUM_NAME)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            set.insert(tokens[i + 2].text.clone());
        }
    }
    set
}

/// Word-boundary containment: `word` appears in `text` not embedded in a
/// longer identifier (so `Update` does not satisfy `UpdateBatch`).
fn mentions_word(text: &str, word: &str) -> bool {
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = end == text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const MESSAGES: &str = r#"
pub enum CoherenceMsg {
    Ping { n: u64 },
    Pong { n: u64 },
}
impl Wire for CoherenceMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            CoherenceMsg::Ping { n } => { buf.put_u8(0); n.encode(buf); }
            CoherenceMsg::Pong { n } => { buf.put_u8(1); n.encode(buf); }
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        match buf.get_u8() {
            0 => Ok(CoherenceMsg::Ping { n: u64::decode(buf)? }),
            1 => Ok(CoherenceMsg::Pong { n: u64::decode(buf)? }),
            other => Err(WireError::UnknownTag { tag: other }),
        }
    }
}
"#;

    fn run(messages: &str, proptest: &str, trace: &str, arch: &str, cfg: &str) -> Vec<Diagnostic> {
        let m = lex(messages);
        let p = lex(proptest);
        let doc = Doc::parse(cfg).expect("config");
        check(&WireInputs {
            messages: &m,
            messages_path: "messages.rs",
            proptest: &p,
            proptest_path: "prop.rs",
            trace_src: trace,
            trace_path: "trace.rs",
            arch_src: arch,
            arch_path: "ARCH.md",
            frame_cfg: &doc,
            frame_cfg_path: "frame_trace.toml",
        })
    }

    const GOOD_CFG: &str =
        "[frames]\nPing = [\"ping_seen\"]\n[exempt]\nPong = \"liveness only, no state effect\"\n";

    #[test]
    fn fully_covered_enum_passes() {
        let diags = run(
            MESSAGES,
            "fn arb() { CoherenceMsg::Ping { n }; CoherenceMsg::Pong { n }; }",
            "fn kind() { \"ping_seen\" }",
            "`Ping` and `Pong` frames.",
            GOOD_CFG,
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn missing_surfaces_each_fire() {
        let diags = run(
            MESSAGES,
            "fn arb() { CoherenceMsg::Ping { n }; }",
            "fn kind() { \"other\" }",
            "Only Ping here.",
            "[frames]\nPing = [\"ping_seen\"]\n",
        );
        // Pong: no proptest, no docs, no trace story; Ping: kind missing.
        assert_eq!(diags.len(), 4, "got: {diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::WireFrame));
    }

    #[test]
    fn tag_mismatch_fires() {
        let bad = MESSAGES.replace("1 => Ok(CoherenceMsg::Pong", "9 => Ok(CoherenceMsg::Pong");
        let diags = run(
            &bad,
            "fn arb() { CoherenceMsg::Ping { n }; CoherenceMsg::Pong { n }; }",
            "fn kind() { \"ping_seen\" }",
            "`Ping` and `Pong` frames.",
            GOOD_CFG,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("encodes tag 1 but decodes tag 9"));
    }

    #[test]
    fn stale_config_entry_fires() {
        let diags = run(
            MESSAGES,
            "fn arb() { CoherenceMsg::Ping { n }; CoherenceMsg::Pong { n }; }",
            "fn kind() { \"ping_seen\" }",
            "`Ping` and `Pong` frames.",
            "[frames]\nPing = [\"ping_seen\"]\nGone = [\"x\"]\n[exempt]\nPong = \"liveness only\"\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Gone"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(mentions_word("the `Update` frame", "Update"));
        assert!(!mentions_word("only UpdateBatch here", "Update"));
    }
}
