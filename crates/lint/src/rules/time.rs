//! Rule `time`: the saturating-time convention.
//!
//! `SimTime - SimTime` and `Instant::duration_since` panic (or, for
//! newer `Instant`s, silently saturate differently per platform) when
//! the "later" operand is actually earlier — and on the protocol path
//! instant order is data-dependent: a reordered heartbeat or a
//! future-dated proof-of-life must degrade to `Duration::ZERO`, not
//! abort a replica (PR 4 audited exactly this by hand). Outside the
//! clock implementation (`net/src/time.rs`) and test modules, direct
//! `-` between time-named operands and any `duration_since` call are
//! forbidden; use `SimTime::saturating_since` /
//! `Instant::saturating_duration_since`.
//!
//! Detection is lexical: an operand counts as "time-named" when its
//! trailing identifier is one of [`TIME_NAMES`] or carries one of
//! [`TIME_SUFFIXES`]. Keep variable naming honest and the rule stays
//! sharp; a deliberate, safe subtraction takes
//! `// lint: allow(time) — <reason>`.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Lexed, TokKind, Token};
use crate::scan::{in_ranges, test_mod_ranges};

/// Identifiers that denote an instant by convention in this repo.
pub const TIME_NAMES: &[&str] = &["now", "deadline", "earlier", "later", "expiry", "heard"];

/// Identifier suffixes that denote an instant.
pub const TIME_SUFFIXES: &[&str] = &["_at", "_deadline", "_instant"];

fn is_time_name(name: &str) -> bool {
    TIME_NAMES.contains(&name) || TIME_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Scans one file's token stream.
pub fn check(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let tests = test_mod_ranges(tokens);
    let mut diags = Vec::new();

    for i in 0..tokens.len() {
        if in_ranges(&tests, i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text == "duration_since" {
            diags.push(Diagnostic {
                rule: Rule::Time,
                file: file.to_string(),
                line: t.line,
                message: "`duration_since` breaks the saturating-time convention; use \
                          `saturating_duration_since` (Instant) or `saturating_since` (SimTime)"
                    .to_string(),
            });
            continue;
        }
        if t.is_punct("-") && is_binary_minus(tokens, i) {
            let lhs = lhs_operand_name(tokens, i);
            let rhs = rhs_operand_name(tokens, i);
            let offender = [lhs.as_deref(), rhs.as_deref()]
                .into_iter()
                .flatten()
                .find(|n| is_time_name(n));
            if let Some(name) = offender {
                diags.push(Diagnostic {
                    rule: Rule::Time,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "raw `-` on time-named operand `{name}` can underflow-panic when event \
                         order is data-dependent; use saturating_since/saturating_duration_since \
                         (or justify with `// lint: allow(time) — <reason>`)"
                    ),
                });
            }
        }
    }
    diags
}

/// Whether the `-` at `i` is a binary subtraction (not negation): the
/// previous token must be able to end an expression.
fn is_binary_minus(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| tokens.get(j)) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => {
            // Keywords that *precede* an expression mean the minus is a
            // negation: `return -x`, `match -x`, …
            !matches!(
                prev.text.as_str(),
                "return" | "match" | "if" | "while" | "in" | "as" | "else" | "break"
            )
        }
        TokKind::Number | TokKind::Literal => true,
        TokKind::Punct => prev.text == ")" || prev.text == "]" || prev.text == "?",
        TokKind::Lifetime => false,
    }
}

/// Trailing identifier of the expression ending just before token `i`
/// (e.g. `head.deadline` → `deadline`, `f(x)` → `f`).
fn lhs_operand_name(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?;
    // Skip one balanced `(...)` / `[...]` group so `f(inner) - x`
    // resolves to `f`, not `inner`.
    loop {
        let t = tokens.get(j)?;
        if t.is_punct(")") || t.is_punct("]") {
            let open = if t.text == ")" { "(" } else { "[" };
            let close = t.text.clone();
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                if t.is_punct(&close) {
                    depth += 1;
                } else if t.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
            continue;
        }
        if t.is_punct("?") {
            j = j.checked_sub(1)?;
            continue;
        }
        return if t.kind == TokKind::Ident {
            Some(t.text.clone())
        } else {
            None
        };
    }
}

/// Leading identifier of the expression starting after token `i`
/// (e.g. `- self.granted_at` → `granted_at` is *not* what we see first;
/// we take the first non-`self` identifier of the chain).
fn rhs_operand_name(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip prefix punctuation: `(`, `&`, `*`.
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct("(") || t.is_punct("&") || t.is_punct("*"))
    {
        j += 1;
    }
    let mut last: Option<String> = None;
    // Walk the field chain `self.x.y` up to a call/operator boundary,
    // keeping the last plain identifier.
    loop {
        let t = tokens.get(j)?;
        if t.kind == TokKind::Ident {
            if t.text != "self" {
                last = Some(t.text.clone());
            }
            j += 1;
            if tokens.get(j).is_some_and(|n| n.is_punct(".")) {
                j += 1;
                continue;
            }
        }
        return last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn flags_duration_since_and_raw_subtraction() {
        let src = "fn f() { let w = head.deadline - now; let d = a.duration_since(b); }\n";
        let diags = check("f.rs", &lex(src));
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::Time));
    }

    #[test]
    fn saturating_variants_and_plain_math_pass() {
        let src = "fn f() { let a = now.saturating_since(t0); \
                   let b = x.saturating_duration_since(y); let c = hi - lo; let d = -5; }\n";
        assert!(check("f.rs", &lex(src)).is_empty());
    }

    #[test]
    fn negation_is_not_subtraction() {
        let src = "fn f() { let a = -now_value(); return -1; }\n";
        assert!(check("f.rs", &lex(src)).is_empty());
    }

    #[test]
    fn field_chains_resolve() {
        let diags = check("f.rs", &lex("fn f() { let w = x - self.granted_at; }\n"));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("granted_at"));
    }

    #[test]
    fn call_results_use_the_callee_name() {
        // `recorded(x) - started(y)`: callee names, not call arguments.
        let diags = check("f.rs", &lex("fn f() { let d = total(now_ms) - len; }\n"));
        // `total` and `len` are not time names; the argument `now_ms`
        // must not leak out of the parens.
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
