//! The four repo-specific rules. Each rule is a pure function from
//! lexed tokens (plus, for `wire-frame`, cross-file inputs) to raw
//! diagnostics; allow-comment suppression is applied once per file by
//! [`crate::scan::apply_allows`] after all rules have run.

pub mod locks;
pub mod panics;
pub mod time;
pub mod wire;
