//! Rule `panic`: panic-freedom of the protocol crates.
//!
//! `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!`, and
//! `unimplemented!` abort the process; on the protocol path that turns
//! a malformed frame or a lost race into a dead replica. Non-test code
//! in `core`, `net`, `wire`, and `coherence` must convert these into
//! counted errors (`fault_stats` / `MetricsStore::transport`) or carry
//! a justified `// lint: allow(panic) — <reason>` for the genuinely
//! impossible cases.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Lexed, TokKind};
use crate::scan::{in_ranges, test_mod_ranges};

/// Macro names that abort.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file's token stream; `file` is the workspace-relative path
/// used in diagnostics.
pub fn check(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let tests = test_mod_ranges(tokens);
    let mut diags = Vec::new();

    for i in 0..tokens.len() {
        if in_ranges(&tests, i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.unwrap()` / `.expect(` — method position only: a local
        // helper named `unwrap` would also be suspect, but none exist,
        // and requiring the leading dot avoids flagging definitions.
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            diags.push(Diagnostic {
                rule: Rule::Panic,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`.{}()` can abort a replica on the protocol path; return an error (count it via \
                     fault_stats/MetricsStore) or justify with `// lint: allow(panic) — <reason>`",
                    t.text
                ),
            });
            continue;
        }
        if PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            diags.push(Diagnostic {
                rule: Rule::Panic,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{}!` aborts the process; protocol code must degrade observably instead \
                     (or justify with `// lint: allow(panic) — <reason>`)",
                    t.text
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::apply_allows;

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); }\n";
        let diags = check("f.rs", &lex(src));
        assert_eq!(diags.len(), 4);
        assert!(diags.iter().all(|d| d.rule == Rule::Panic));
    }

    #[test]
    fn test_mod_and_allows_are_exempt() {
        let src = "\
fn f() {\n\
    // lint: allow(panic) — length checked two lines up\n\
    x.unwrap();\n\
}\n\
#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); panic!(\"fine in tests\"); }\n}\n";
        let lexed = lex(src);
        let diags = apply_allows("f.rs", &lexed, check("f.rs", &lexed));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() {\n    // lint: allow(panic)\n    x.unwrap();\n}\n";
        let lexed = lex(src);
        let diags = apply_allows("f.rs", &lexed, check("f.rs", &lexed));
        // The unwrap stays un-suppressed AND the bare allow is flagged.
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn unwrap_or_default_is_fine() {
        let diags = check("f.rs", &lex("fn f() { x.unwrap_or_default(); }\n"));
        assert!(diags.is_empty());
    }
}
