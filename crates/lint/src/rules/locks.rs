//! Rule `lock-order`: nested mutex acquisitions must follow the
//! declared partial order.
//!
//! The pass extracts every `.lock()` call per function body in the
//! runtime files, tracks which guards are plausibly held when the next
//! one is taken (let-bound guards live to the end of their block,
//! temporaries to the end of their statement, `drop(guard)` releases
//! early), canonicalises receiver names through the per-file alias
//! tables in `lock_order.toml`, and checks every nested pair against
//! the declared total order. Same-lock re-entry is always a finding
//! (the vendored `parking_lot::Mutex` is not re-entrant); a nested lock
//! whose name is not declared at all is a finding too, so the order
//! file must be extended deliberately rather than drifting.
//!
//! Closure bodies (`|…| { … }` and `move || { … }`) are analysed as
//! separate contexts: a guard held where the closure is *written* is
//! not assumed held where the closure *runs*.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Lexed, TokKind, Token};
use crate::scan::{in_ranges, test_mod_ranges};

/// The declared order plus per-file receiver aliases.
#[derive(Debug, Default)]
pub struct LockConfig {
    /// Canonical lock-class names, outermost first. Total order: a
    /// nested acquisition must move strictly left-to-right.
    pub order: Vec<String>,
    /// file-stem → (receiver name → canonical name).
    pub aliases: BTreeMap<String, BTreeMap<String, String>>,
}

impl LockConfig {
    /// Parses the `lock_order.toml` document.
    pub fn from_doc(doc: &crate::config::Doc) -> Result<LockConfig, String> {
        let order = doc
            .arrays
            .get("order")
            .cloned()
            .ok_or("lock_order.toml: missing top-level `order = [...]`")?;
        let mut aliases: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        for (key, value) in &doc.strings {
            if let Some(rest) = key.strip_prefix("aliases.") {
                let (file, receiver) = rest
                    .split_once('.')
                    .ok_or_else(|| format!("lock_order.toml: bad alias key `{key}`"))?;
                aliases
                    .entry(file.to_string())
                    .or_default()
                    .insert(receiver.to_string(), value.clone());
            }
        }
        for map in aliases.values() {
            for target in map.values() {
                if !order.contains(target) {
                    return Err(format!(
                        "lock_order.toml: alias target `{target}` is not in `order`"
                    ));
                }
            }
        }
        Ok(LockConfig { order, aliases })
    }

    fn rank(&self, name: &str) -> Option<usize> {
        self.order.iter().position(|n| n == name)
    }

    fn canonical(&self, file_stem: &str, receiver: &str) -> String {
        if let Some(map) = self.aliases.get(file_stem) {
            if let Some(c) = map.get(receiver) {
                return c.clone();
            }
        }
        receiver.to_string()
    }
}

/// A guard currently assumed held.
#[derive(Debug, Clone)]
struct Held {
    /// Canonical lock-class name.
    name: String,
    /// The `let` binding, for `drop(x)` release; `None` for temporaries.
    binding: Option<String>,
    /// Brace depth the guard was taken at.
    depth: usize,
    /// Temporary guards die at the end of their statement.
    temp: bool,
}

/// Scans one file. `file` is the diagnostics path; the alias table is
/// selected by the file stem (`tcp_runtime` for `…/tcp_runtime.rs`).
pub fn check(file: &str, lexed: &Lexed, cfg: &LockConfig) -> Vec<Diagnostic> {
    let stem = file
        .rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".rs")
        .to_string();
    let tokens = &lexed.tokens;
    let tests = test_mod_ranges(tokens);
    let mut diags = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        if in_ranges(&tests, i) {
            i += 1;
            continue;
        }
        if tokens[i].is_ident("fn") {
            if let Some((body_start, body_end)) = fn_body(tokens, i) {
                walk_body(file, &stem, tokens, body_start, body_end, cfg, &mut diags);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
    diags
}

/// Finds the `{`..`}` token range of the body of the `fn` at `i`.
fn fn_body(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    let mut paren = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct(";") && paren == 0 {
            return None; // trait method declaration, no body
        } else if t.is_punct("{") && paren == 0 {
            return Some((j, crate::scan::matching_brace(tokens, j)));
        }
        j += 1;
    }
    None
}

/// Walks one function body tracking held guards and recording nested
/// acquisition findings.
fn walk_body(
    file: &str,
    stem: &str,
    tokens: &[Token],
    start: usize,
    end: usize,
    cfg: &LockConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let mut held: Vec<Held> = Vec::new();
    // Stacks saved on entering a closure body, keyed by the depth the
    // closure body's brace opened at.
    let mut saved: Vec<(usize, Vec<Held>)> = Vec::new();
    let mut depth = 0usize;
    let mut i = start;

    while i < end {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            if closure_brace(tokens, i, start) {
                saved.push((depth, std::mem::take(&mut held)));
            }
            // A brace also ends the statement the temporaries lived in.
            held.retain(|g| !g.temp);
        } else if t.is_punct("}") {
            held.retain(|g| g.depth < depth);
            if let Some((d, outer)) = saved.last() {
                if *d == depth {
                    held = outer.clone();
                    saved.pop();
                }
            }
            depth = depth.saturating_sub(1);
        } else if t.is_punct(";") {
            held.retain(|g| !g.temp);
        } else if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let victim = &tokens[i + 2].text;
            held.retain(|g| g.binding.as_deref() != Some(victim));
            i += 4;
            continue;
        } else if t.is_ident("lock")
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(")"))
        {
            let receiver = receiver_name(tokens, i - 1, start);
            let name = cfg.canonical(stem, &receiver);
            for g in &held {
                report_pair(file, tokens[i].line, &g.name, &name, cfg, diags);
            }
            let (binding, is_let) = let_binding(tokens, i, start);
            held.push(Held {
                name,
                binding,
                depth,
                temp: !is_let,
            });
        }
        i += 1;
    }
}

/// Whether the `{` at `i` opens a closure body: the preceding
/// significant token is a closure-parameter `|` or `||` (or `move`
/// never appears directly before `{` without them).
fn closure_brace(tokens: &[Token], i: usize, start: usize) -> bool {
    if i == start {
        return false;
    }
    let Some(prev) = i.checked_sub(1).and_then(|j| tokens.get(j)) else {
        return false;
    };
    if prev.is_punct("||") {
        return true;
    }
    if !prev.is_punct("|") {
        // `|args| -> Ret {` — tolerate a return type between `|` and `{`.
        if prev.kind == TokKind::Ident || prev.is_punct(">") {
            let mut j = i - 1;
            let mut steps = 0;
            while j > start && steps < 8 {
                if tokens[j].is_punct("|") || tokens[j].is_punct("||") {
                    return tokens.get(j + 1).is_some_and(|t| t.is_punct("->"))
                        || tokens[j].is_punct("||");
                }
                if tokens[j].is_punct("{") || tokens[j].is_punct("}") || tokens[j].is_punct(";") {
                    return false;
                }
                j -= 1;
                steps += 1;
            }
        }
        return false;
    }
    // Closing `|` of a parameter list: scan back for the opening `|`
    // within the same statement.
    let mut j = i - 2;
    while j > start {
        let t = &tokens[j];
        if t.is_punct("|") {
            return true;
        }
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false;
        }
        if j == 0 {
            break;
        }
        j -= 1;
    }
    false
}

/// Canonical receiver of the postfix chain ending at the `.` before
/// `lock` (token index `dot`): the last top-level identifier that is
/// *not* a method call (`self.endpoints.get(&n).expect("..")` →
/// `endpoints`; `spaces[&node]` → `spaces`), falling back to the last
/// method name (`self.lane(obj)` → `lane`).
fn receiver_name(tokens: &[Token], dot: usize, start: usize) -> String {
    // Walk backwards collecting top-level chain identifiers.
    let mut j = dot;
    let mut plain: Option<String> = None;
    let mut call: Option<String> = None;
    while let Some(k) = j.checked_sub(1) {
        if k < start {
            break;
        }
        let t = &tokens[k];
        if t.is_punct(")") || t.is_punct("]") {
            let open = if t.text == ")" { "(" } else { "[" };
            let close = t.text.clone();
            let mut depth = 0i32;
            let mut m = k;
            loop {
                let tm = &tokens[m];
                if tm.is_punct(&close) {
                    depth += 1;
                } else if tm.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                let Some(next) = m.checked_sub(1) else { break };
                if next < start {
                    break;
                }
                m = next;
            }
            // The ident before `(` is a call name; before `[` it is a
            // plain indexed field.
            if let Some(p) = m.checked_sub(1) {
                if p >= start && tokens[p].kind == TokKind::Ident {
                    if close == ")" {
                        call.get_or_insert_with(|| tokens[p].text.clone());
                    } else if tokens[p].text != "self" {
                        plain.get_or_insert_with(|| tokens[p].text.clone());
                    }
                    j = p;
                    continue;
                }
            }
            j = m;
            continue;
        }
        if t.is_punct("?") || t.is_punct(".") {
            j = k;
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text != "self" && plain.is_none() {
                plain = Some(t.text.clone());
            }
            j = k;
            // Chain continues only through a further `.` / `?`.
            if j.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| p.is_punct(".") || p.is_punct("?"))
            {
                continue;
            }
            break;
        }
        break;
    }
    plain.or(call).unwrap_or_else(|| "<unknown>".to_string())
}

/// Whether the statement containing the `.lock()` at `i` is a
/// `let [mut] name = …` binding; returns the binding name.
fn let_binding(tokens: &[Token], i: usize, start: usize) -> (Option<String>, bool) {
    // Scan back to the statement start.
    let mut j = i;
    while j > start {
        let t = &tokens[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        j -= 1;
    }
    if tokens.get(j).is_some_and(|t| t.is_ident("let")) {
        let mut k = j + 1;
        if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if let Some(name) = tokens.get(k).filter(|t| t.kind == TokKind::Ident) {
            return (Some(name.text.clone()), true);
        }
    }
    (None, false)
}

/// Records findings for one nested pair `outer → inner`.
fn report_pair(
    file: &str,
    line: u32,
    outer: &str,
    inner: &str,
    cfg: &LockConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if outer == inner {
        diags.push(Diagnostic {
            rule: Rule::LockOrder,
            file: file.to_string(),
            line,
            message: format!(
                "same-mutex re-entry: `{inner}` is acquired while a `{outer}` guard is still \
                 held — parking_lot mutexes are not re-entrant, this deadlocks"
            ),
        });
        return;
    }
    match (cfg.rank(outer), cfg.rank(inner)) {
        (Some(ro), Some(ri)) if ro > ri => diags.push(Diagnostic {
            rule: Rule::LockOrder,
            file: file.to_string(),
            line,
            message: format!(
                "lock-order inversion: `{inner}` acquired while holding `{outer}`, but the \
                 declared order is {:?} — this edge closes a deadlock cycle",
                cfg.order
            ),
        }),
        (Some(_), Some(_)) => {}
        _ => {
            let missing = if cfg.rank(outer).is_none() {
                outer
            } else {
                inner
            };
            diags.push(Diagnostic {
                rule: Rule::LockOrder,
                file: file.to_string(),
                line,
                message: format!(
                    "nested acquisition involves lock `{missing}` which is not declared in \
                     lock_order.toml — add it to `order` (or alias the receiver) so the pair \
                     can be checked"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Doc;
    use crate::lexer::lex;

    fn cfg() -> LockConfig {
        LockConfig::from_doc(
            &Doc::parse(
                "order = [\"endpoints\", \"spaces\", \"metrics\"]\n\
                 [aliases.f]\nendpoint = \"endpoints\"\nspace = \"spaces\"\n",
            )
            .expect("parse"),
        )
        .expect("config")
    }

    #[test]
    fn ordered_nesting_passes() {
        let src = "fn f(&self) { let mut endpoint = self.endpoints.get(&n).lock(); \
                    let mut space = self.spaces[&n].lock(); space.go(); }";
        assert!(check("f.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn inversion_fires() {
        let src = "fn f(&self) { let mut space = self.spaces[&n].lock(); \
                    let mut endpoint = self.endpoints.get(&n).lock(); }";
        let diags = check("f.rs", &lex(src), &cfg());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("inversion"));
    }

    #[test]
    fn reentry_fires() {
        let src = "fn f(&self) { let a = self.metrics.lock(); let b = self.metrics.lock(); }";
        let diags = check("f.rs", &lex(src), &cfg());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("re-entry"));
    }

    #[test]
    fn block_scope_releases_guards() {
        let src = "fn f(&self) { { let mut space = self.spaces[&n].lock(); } \
                    let mut endpoint = self.endpoints.get(&n).lock(); }";
        assert!(check("f.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn drop_releases_early() {
        let src = "fn f(&self) { let mut space = self.spaces[&n].lock(); drop(space); \
                    let mut endpoint = self.endpoints.get(&n).lock(); }";
        assert!(check("f.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let src = "fn f(&self) { self.spaces[&n].lock().go(); \
                    let mut endpoint = self.endpoints.get(&n).lock(); }";
        assert!(check("f.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn closures_are_separate_contexts() {
        let src = "fn f(&self) { let mut space = self.spaces[&n].lock(); \
                    run(move |x| { let e = self.endpoints.get(&x).lock(); }); }";
        assert!(check("f.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn undeclared_nested_lock_fires() {
        let src = "fn f(&self) { let a = self.spaces[&n].lock(); let b = self.mystery.lock(); }";
        let diags = check("f.rs", &lex(src), &cfg());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("mystery"));
    }

    #[test]
    fn receiver_canonicalisation() {
        let lexed = lex("self.endpoints.get(&node).expect(\"x\").lock()");
        let dot = lexed
            .tokens
            .iter()
            .rposition(|t| t.is_punct("."))
            .expect("dot");
        assert_eq!(receiver_name(&lexed.tokens, dot, 0), "endpoints");
        let lexed = lex("self.lane(handle.object).lock()");
        let dot = lexed
            .tokens
            .iter()
            .rposition(|t| t.is_punct("."))
            .expect("dot");
        assert_eq!(receiver_name(&lexed.tokens, dot, 0), "lane");
    }
}
