//! Diagnostics: one violation with its location, plus text and JSON
//! renderers for `--check` and `--json` output.

use std::fmt;

/// The lint rule a diagnostic belongs to. The names here are also the
/// allow-comment keys: `// lint: allow(panic) — reason`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in non-test protocol
    /// code.
    Panic,
    /// Raw `-`/`duration_since` on time-valued operands outside the
    /// clock implementation.
    Time,
    /// A nested lock acquisition violating the declared partial order.
    LockOrder,
    /// A wire frame missing an encode/decode/proptest/doc/trace arm.
    WireFrame,
}

impl Rule {
    /// The allow-comment key and JSON label.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Time => "time",
            Rule::LockOrder => "lock-order",
            Rule::WireFrame => "wire-frame",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a file:line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line; 0 when the finding is file-level (e.g. a frame
    /// missing from a whole file).
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Renders diagnostics as a JSON array (machine-readable `--json` mode).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            d.rule,
            escape(&d.file),
            d.line,
            escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let diags = vec![Diagnostic {
            rule: Rule::Panic,
            file: "a \"b\".rs".into(),
            line: 7,
            message: "line\nbreak".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
