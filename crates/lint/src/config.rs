//! Configuration files for the lint pass, parsed with a deliberately
//! tiny TOML-subset reader (the build environment has no crates.io
//! access, and the two config files only need string values, string
//! arrays, and `[section.sub]` tables).
//!
//! Supported grammar per line:
//! - `# comment` / blank
//! - `[section]` / `[section.sub]` (dotted, unquoted keys)
//! - `key = "value"`
//! - `key = ["a", "b", ...]` (single line)

use std::collections::BTreeMap;

/// A parsed TOML-subset document: scalar strings and string arrays,
/// keyed by `section.key` (top-level keys have no `section.` prefix).
#[derive(Debug, Default)]
pub struct Doc {
    pub strings: BTreeMap<String, String>,
    pub arrays: BTreeMap<String, Vec<String>>,
}

impl Doc {
    /// Parses `src`, failing loudly on anything outside the subset so a
    /// malformed config cannot silently disable a rule.
    pub fn parse(src: &str) -> Result<Doc, String> {
        let mut doc = Doc::default();
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", idx + 1))?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", idx + 1))?;
            let key = key.trim();
            let value = value.trim();
            let full_key = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            if let Some(inner) = value.strip_prefix('[') {
                let inner = inner
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: arrays must be single-line", idx + 1))?;
                let mut items = Vec::new();
                for item in split_top_level_commas(inner) {
                    let item = item.trim();
                    if item.is_empty() {
                        continue;
                    }
                    items.push(unquote(item).map_err(|e| format!("line {}: {e}", idx + 1))?);
                }
                doc.arrays.insert(full_key, items);
            } else {
                doc.strings.insert(
                    full_key,
                    unquote(value).map_err(|e| format!("line {}: {e}", idx + 1))?,
                );
            }
        }
        Ok(doc)
    }

    /// All `section.key = "value"` pairs under one section, with the
    /// section prefix stripped.
    pub fn section_strings(&self, section: &str) -> BTreeMap<String, String> {
        let prefix = format!("{section}.");
        self.strings
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(&prefix)
                    .map(|rest| (rest.to_string(), v.clone()))
            })
            .collect()
    }

    /// All `section.key = [..]` arrays under one section, with the
    /// section prefix stripped.
    pub fn section_arrays(&self, section: &str) -> BTreeMap<String, Vec<String>> {
        let prefix = format!("{section}.");
        self.arrays
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(&prefix)
                    .map(|rest| (rest.to_string(), v.clone()))
            })
            .collect()
    }
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&s[start..]);
    items
}

fn unquote(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))?;
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let doc = Doc::parse(
            r#"
# comment
order = ["a", "b", "c"]
[aliases.tcp_runtime]
endpoint = "endpoints"
space = "spaces"
"#,
        )
        .expect("valid config");
        assert_eq!(doc.arrays["order"], vec!["a", "b", "c"]);
        let aliases = doc.section_strings("aliases.tcp_runtime");
        assert_eq!(aliases["endpoint"], "endpoints");
        assert_eq!(aliases["space"], "spaces");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Doc::parse("key value-without-equals").is_err());
        assert!(Doc::parse("key = unquoted").is_err());
        assert!(Doc::parse("[unterminated").is_err());
    }
}
