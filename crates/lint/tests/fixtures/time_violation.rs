// Fixture: time-rule violations at pinned lines (raw subtraction on
// time-named operands and a duration_since call). Lexed, not compiled.

fn lease_wait(now: SimTime, deadline: SimTime) -> Duration {
    let remaining = deadline - now; // line 5: raw SimTime subtraction
    remaining
}

fn heartbeat_age(now: Instant, heard_at: Instant) -> Duration {
    now.duration_since(heard_at) // line 10: non-saturating API
}

fn fine(now: SimTime, granted_at: SimTime, hi: u64, lo: u64) -> u64 {
    let _ = now.saturating_since(granted_at);
    hi - lo // plain integer math: not time-named, no finding
}
