// Fixture: lock-order violations at pinned lines, checked against the
// real crates/lint/lock_order.toml (tcp_runtime aliases apply — the
// fixture is lexed under the file stem "tcp_runtime"). Not compiled.

fn inverted(&self, node: NodeId) {
    let mut space = self.spaces[&node].lock();
    let mut endpoint = self.endpoints.get(&node).lock(); // line 7: spaces→endpoints inversion
    endpoint.ctx();
    space.go();
}

fn reentrant(&self) {
    let a = self.metrics.lock();
    let b = self.metrics.lock(); // line 14: same-mutex re-entry
}

fn fine(&self, node: NodeId) {
    let mut endpoint = self.endpoints.get(&node).lock();
    let mut space = self.spaces[&node].lock();
    drop(space);
    drop(endpoint);
    let held = self.history.lock();
    self.metrics.lock().bump(); // history→metrics: declared order
}
