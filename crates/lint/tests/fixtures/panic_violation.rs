// Fixture: panic-rule violations at pinned lines. Not compiled — lexed
// by tests/fixtures.rs, which asserts the exact file/line/rule of every
// finding (update the assertions if you renumber lines here).

fn hot_path(frame: Option<u32>) -> u32 {
    let value = frame.unwrap(); // line 6: method-position unwrap
    if value > 7 {
        panic!("protocol violation"); // line 8: abort macro
    }
    value
}

fn justified(frame: Option<u32>) -> u32 {
    // lint: allow(panic) — fixture: reason present, finding suppressed
    frame.expect("stays suppressed")
}

fn bare_allow(frame: Option<u32>) -> u32 {
    // lint: allow(panic)
    frame.expect("line 20: bare allow suppresses nothing and is itself flagged")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = None::<u32>.unwrap_or_else(|| panic!("fine in tests"));
    }
}
