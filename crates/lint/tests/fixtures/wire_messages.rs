// Fixture: a miniature CoherenceMsg with seeded wire-frame drift, fed
// to the wire rule by tests/fixtures.rs together with fixture proptest,
// trace, docs, and frame_trace inputs. Seeded defects:
//   - `Orphan` (tag 2) has an encode arm but NO decode arm;
//   - `Skewed` encodes tag 3 but decodes tag 9.

pub enum CoherenceMsg {
    Ping { n: u64 },
    Pong { n: u64 },
    Orphan { n: u64 },
    Skewed { n: u64 },
}

impl Wire for CoherenceMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            CoherenceMsg::Ping { n } => {
                buf.put_u8(0);
                n.encode(buf);
            }
            CoherenceMsg::Pong { n } => {
                buf.put_u8(1);
                n.encode(buf);
            }
            CoherenceMsg::Orphan { n } => {
                buf.put_u8(2);
                n.encode(buf);
            }
            CoherenceMsg::Skewed { n } => {
                buf.put_u8(3);
                n.encode(buf);
            }
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        match buf.get_u8() {
            0 => Ok(CoherenceMsg::Ping { n: u64::decode(buf)? }),
            1 => Ok(CoherenceMsg::Pong { n: u64::decode(buf)? }),
            9 => Ok(CoherenceMsg::Skewed { n: u64::decode(buf)? }),
            other => Err(WireError::UnknownTag { tag: other }),
        }
    }
}
