//! Fixture tests: every rule must flag its seeded violation at the
//! exact file/line — and nothing else — and the real workspace must
//! lint clean (the self-check that keeps the CI gate honest).

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use globe_lint::config::Doc;
use globe_lint::diag::{Diagnostic, Rule};
use globe_lint::lexer::lex;
use globe_lint::rules::locks::LockConfig;
use globe_lint::rules::wire::WireInputs;
use globe_lint::{rules, scan};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// `(rule, line)` pairs, sorted, for compact exact-match assertions.
fn shape(diags: &[Diagnostic]) -> Vec<(Rule, u32)> {
    let mut v: Vec<(Rule, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    v.sort();
    v
}

#[test]
fn panic_fixture_exact_findings() {
    let src = fixture("panic_violation.rs");
    let lexed = lex(&src);
    let diags = scan::apply_allows(
        "tests/fixtures/panic_violation.rs",
        &lexed,
        rules::panics::check("tests/fixtures/panic_violation.rs", &lexed),
    );
    // line 6 unwrap, line 8 panic!, line 19 bare allow, line 20 its
    // unsuppressed expect; the justified allow at 14/15 and the
    // #[cfg(test)] mod produce nothing.
    assert_eq!(
        shape(&diags),
        vec![
            (Rule::Panic, 6),
            (Rule::Panic, 8),
            (Rule::Panic, 19),
            (Rule::Panic, 20),
        ],
        "diags: {diags:#?}"
    );
    assert!(diags
        .iter()
        .all(|d| d.file == "tests/fixtures/panic_violation.rs"));
}

#[test]
fn time_fixture_exact_findings() {
    let src = fixture("time_violation.rs");
    let lexed = lex(&src);
    let diags = rules::time::check("tests/fixtures/time_violation.rs", &lexed);
    assert_eq!(
        shape(&diags),
        vec![(Rule::Time, 5), (Rule::Time, 10)],
        "diags: {diags:#?}"
    );
    assert!(diags[0].message.contains("deadline"));
}

#[test]
fn lock_fixture_exact_findings() {
    let cfg_src = fixture("../../lock_order.toml");
    let cfg = LockConfig::from_doc(&Doc::parse(&cfg_src).expect("parse lock_order.toml"))
        .expect("lock config");
    let src = fixture("lock_violation.rs");
    let lexed = lex(&src);
    // The stem "tcp_runtime" selects that file's alias table.
    let diags = rules::locks::check("tcp_runtime.rs", &lexed, &cfg);
    assert_eq!(
        shape(&diags),
        vec![(Rule::LockOrder, 7), (Rule::LockOrder, 14)],
        "diags: {diags:#?}"
    );
    assert!(diags[0].message.contains("inversion"));
    assert!(diags[1].message.contains("re-entry"));
}

#[test]
fn wire_fixture_exact_findings() {
    let messages = lex(&fixture("wire_messages.rs"));
    let proptest = lex("fn arb() { CoherenceMsg::Ping { n }; CoherenceMsg::Pong { n }; }");
    let frame_cfg = Doc::parse(
        "[frames]\nPing = [\"ping_seen\"]\n[exempt]\nPong = \"fixture: liveness only\"\n",
    )
    .expect("frame cfg");
    let diags = rules::wire::check(&WireInputs {
        messages: &messages,
        messages_path: "wire_messages.rs",
        proptest: &proptest,
        proptest_path: "prop.rs",
        trace_src: "fn kind() { \"ping_seen\" }",
        trace_path: "trace.rs",
        arch_src: "`Ping` and `Pong` frames are documented; Orphan and Skewed too.",
        arch_path: "ARCH.md",
        frame_cfg: &frame_cfg,
        frame_cfg_path: "frame_trace.toml",
    });
    // Orphan (enum line 10): no decode arm, no proptest, no trace story.
    // Skewed (enum line 11): tag skew 3→9, no proptest, no trace story.
    let orphan: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.message.contains("Orphan"))
        .collect();
    let skewed: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.message.contains("Skewed"))
        .collect();
    assert_eq!(orphan.len(), 3, "diags: {diags:#?}");
    assert!(orphan
        .iter()
        .any(|d| d.message.contains("no decode arm") && d.line == 10));
    assert_eq!(skewed.len(), 3, "diags: {diags:#?}");
    assert!(skewed
        .iter()
        .any(|d| d.message.contains("encodes tag 3 but decodes tag 9") && d.line == 11));
    assert_eq!(
        diags.len(),
        orphan.len() + skewed.len(),
        "diags: {diags:#?}"
    );
    assert!(diags.iter().all(|d| d.rule == Rule::WireFrame));
}

/// The gate's promise: the shipped workspace is clean, with every allow
/// carrying a reason. Runs the full pass exactly as the CLI does.
#[test]
fn self_check_workspace_is_clean() {
    let diags = globe_lint::run(&workspace_root()).expect("lint pass runs");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; found:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
