//! Virtual time for the deterministic network simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// An instant on the simulator's virtual clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and monotone within a run. In the TCP
/// runtime the same type carries wall-clock nanoseconds since process
/// start, so protocol code is oblivious to which clock drives it.
///
/// # Examples
///
/// ```
/// use globe_net::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(250);
/// assert_eq!(t.as_nanos(), 250_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a `SimTime` from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a `SimTime` from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a `SimTime` from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a `SimTime` from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration since an earlier instant.
    ///
    /// Unlike the `Sub` impl this never panics, making it safe for
    /// staleness arithmetic on instants whose order is data-dependent.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Exact difference between two instants whose order is statically
    /// known — **test and bench arithmetic only**. Runtime code that
    /// compares instants whose order is data-dependent (detector
    /// staleness, latency accounting, anything fed by timestamps a
    /// reordered or late event may have recorded) must use
    /// [`SimTime::saturating_since`], which degrades to zero instead of
    /// aborting the process.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    // Documented contract (see above): the panicking form is for test
    // assertions where underflow is a bug; protocol code must use
    // `saturating_since`, which globe-lint's time rule enforces.
    #[allow(clippy::expect_used)]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(panic) — documented contract: panicking Sub is the test-assertion form; protocol code uses saturating_since (enforced by the time rule)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl WireEncode for SimTime {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl WireDecode for SimTime {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(SimTime(u64::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        assert_eq!(
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(9)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn wire_roundtrip() {
        let t = SimTime::from_nanos(123_456_789);
        let b = globe_wire::to_bytes(&t);
        assert_eq!(globe_wire::from_bytes::<SimTime>(&b).unwrap(), t);
    }
}
