//! Events delivered to node handlers, and the handler-side context trait.

use std::time::Duration;

use bytes::Bytes;

use crate::{NodeId, SimTime};

/// Application-chosen discriminator carried by a timer.
///
/// Protocols encode *which* logical timer fired (for example "periodic
/// propagation for object 7") into the token; the network layer treats it
/// as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimerToken(pub u64);

/// Unique handle for one scheduled timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// One occurrence delivered to a node's handler.
#[derive(Debug, Clone)]
pub enum Event {
    /// A network message arrived.
    Message {
        /// The sending node.
        from: NodeId,
        /// The marshalled payload.
        payload: Bytes,
    },
    /// A timer set earlier by this node fired.
    Timer {
        /// The token the timer was armed with.
        token: TimerToken,
    },
}

/// The capabilities a handler may use while processing an [`Event`].
///
/// Both the virtual-time simulator and the TCP mesh implement this trait,
/// so protocol code is written once (sans-IO) and runs on either.
pub trait NetCtx {
    /// The node this handler runs on.
    fn node(&self) -> NodeId;

    /// Current time (virtual in the simulator, wall-clock in the mesh).
    fn now(&self) -> SimTime;

    /// Sends `payload` to `to`. Delivery is asynchronous and may fail
    /// silently (loss, partition), exactly like a datagram.
    fn send(&mut self, to: NodeId, payload: Bytes);

    /// Arms a one-shot timer that will deliver [`Event::Timer`] with
    /// `token` after `delay`.
    fn set_timer(&mut self, delay: Duration, token: TimerToken) -> TimerId;

    /// Cancels a timer; a no-op if it already fired.
    fn cancel_timer(&mut self, id: TimerId);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips_through_event() {
        let e = Event::Timer {
            token: TimerToken(9),
        };
        match e {
            Event::Timer { token } => assert_eq!(token, TimerToken(9)),
            Event::Message { .. } => panic!("wrong variant"),
        }
    }
}
