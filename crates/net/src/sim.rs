//! Deterministic virtual-time network simulator.
//!
//! The simulator is a single-threaded discrete-event engine: every message
//! delivery and timer expiry is an event ordered by `(virtual time,
//! sequence number)`, so a run is a pure function of the topology, the
//! seed, and the injected workload. That determinism is what lets the
//! coherence checkers in `globe-coherence` treat a whole distributed
//! execution as one replayable history.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Event, NetCtx, NetStats, NodeId, SimTime, TimerId, TimerToken, Topology};

/// What happened to a message at routing time, reported to the tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDisposition {
    /// Scheduled for delivery.
    Scheduled,
    /// Dropped by the probabilistic loss model.
    DroppedLoss,
    /// Dropped because the node pair is partitioned.
    DroppedPartition,
}

/// One observation handed to a registered message tap.
#[derive(Debug, Clone)]
pub struct TapEvent {
    /// Virtual time at which the message was sent.
    pub sent_at: SimTime,
    /// Virtual time at which it will be delivered, when scheduled.
    pub deliver_at: Option<SimTime>,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload length in bytes.
    pub len: usize,
    /// Outcome at routing time.
    pub disposition: TapDisposition,
}

type Handler = Box<dyn FnMut(Event, &mut dyn NetCtx)>;
type Tap = Box<dyn FnMut(&TapEvent)>;

#[derive(Debug)]
enum Pending {
    Deliver {
        from: NodeId,
        to: NodeId,
        payload: Bytes,
    },
    Fire {
        node: NodeId,
        token: TimerToken,
        id: TimerId,
    },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    pending: Pending,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

enum Action {
    Send {
        to: NodeId,
        payload: Bytes,
    },
    SetTimer {
        delay: Duration,
        token: TimerToken,
        id: TimerId,
    },
    CancelTimer(TimerId),
}

struct SimCtx {
    node: NodeId,
    now: SimTime,
    next_timer: u64,
    actions: Vec<Action>,
}

impl NetCtx for SimCtx {
    fn node(&self) -> NodeId {
        self.node
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, to: NodeId, payload: Bytes) {
        self.actions.push(Action::Send { to, payload });
    }
    fn set_timer(&mut self, delay: Duration, token: TimerToken) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.actions.push(Action::SetTimer { delay, token, id });
        id
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }
}

/// The deterministic virtual-time network.
///
/// # Examples
///
/// Echo between two nodes:
///
/// ```
/// use bytes::Bytes;
/// use globe_net::{Event, SimNet, Topology};
///
/// let mut net = SimNet::new(Topology::lan(), 7);
/// let a = net.add_node();
/// let b = net.add_node();
/// net.set_handler(b, move |event, ctx| {
///     if let Event::Message { from, payload } = event {
///         ctx.send(from, payload); // echo
///     }
/// });
/// let got = std::rc::Rc::new(std::cell::Cell::new(false));
/// let got2 = got.clone();
/// net.set_handler(a, move |event, _ctx| {
///     if let Event::Message { .. } = event {
///         got2.set(true);
///     }
/// });
/// net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"ping")));
/// net.run_until_quiescent();
/// assert!(got.get());
/// ```
pub struct SimNet {
    topology: Topology,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    handlers: HashMap<NodeId, Handler>,
    cancelled: HashSet<TimerId>,
    fifo_horizon: HashMap<(NodeId, NodeId), SimTime>,
    rng: StdRng,
    stats: NetStats,
    tap: Option<Tap>,
}

impl SimNet {
    /// Creates a simulator over `topology`, seeded for reproducibility.
    pub fn new(topology: Topology, seed: u64) -> Self {
        SimNet {
            topology,
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            queue: BinaryHeap::new(),
            handlers: HashMap::new(),
            cancelled: HashSet::new(),
            fifo_horizon: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            tap: None,
        }
    }

    /// Registers a new node (region 0) and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.topology.add_node()
    }

    /// Registers a new node in `region`.
    pub fn add_node_in(&mut self, region: crate::RegionId) -> NodeId {
        self.topology.add_node_in(region)
    }

    /// Installs the event handler for `node`, replacing any previous one.
    pub fn set_handler<F>(&mut self, node: NodeId, handler: F)
    where
        F: FnMut(Event, &mut dyn NetCtx) + 'static,
    {
        self.handlers.insert(node, Box::new(handler));
    }

    /// Installs a tap observing the disposition of every routed message.
    pub fn set_tap<F>(&mut self, tap: F)
    where
        F: FnMut(&TapEvent) + 'static,
    {
        self.tap = Some(Box::new(tap));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The topology, for mid-run partitioning or link changes.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs `f` with a context bound to `node`, applying any sends or
    /// timer operations it performs. This is how workload drivers inject
    /// client operations into the simulation from outside any handler.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NetCtx) -> R) -> R {
        let mut ctx = SimCtx {
            node,
            now: self.now,
            next_timer: self.next_timer,
            actions: Vec::new(),
        };
        let result = f(&mut ctx);
        self.next_timer = ctx.next_timer;
        let actions = ctx.actions;
        for action in actions {
            self.apply(node, action);
        }
        result
    }

    fn apply(&mut self, node: NodeId, action: Action) {
        match action {
            Action::Send { to, payload } => self.route(node, to, payload),
            Action::SetTimer { delay, token, id } => {
                self.stats.timers_set += 1;
                let at = self.now + delay;
                self.push(at, Pending::Fire { node, token, id });
            }
            Action::CancelTimer(id) => {
                self.cancelled.insert(id);
            }
        }
    }

    fn push(&mut self, at: SimTime, pending: Pending) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, pending }));
    }

    fn tap(&mut self, event: TapEvent) {
        if let Some(tap) = self.tap.as_mut() {
            tap(&event);
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        let len = payload.len();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += len as u64;
        if from == to {
            // Local IPC between a proxy and a store in the same address
            // space: fast, reliable, unaffected by partitions.
            let at = self.now + Duration::from_micros(1);
            self.tap(TapEvent {
                sent_at: self.now,
                deliver_at: Some(at),
                from,
                to,
                len,
                disposition: TapDisposition::Scheduled,
            });
            self.push(at, Pending::Deliver { from, to, payload });
            return;
        }
        if self.topology.is_partitioned(from, to) {
            self.stats.dropped_partition += 1;
            self.tap(TapEvent {
                sent_at: self.now,
                deliver_at: None,
                from,
                to,
                len,
                disposition: TapDisposition::DroppedPartition,
            });
            return;
        }
        let link = self.topology.link(from, to);
        if link.loss > 0.0 && self.rng.random::<f64>() < link.loss {
            self.stats.dropped_loss += 1;
            self.tap(TapEvent {
                sent_at: self.now,
                deliver_at: None,
                from,
                to,
                len,
                disposition: TapDisposition::DroppedLoss,
            });
            return;
        }
        let jitter = if link.jitter.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.rng.random_range(0..=link.jitter.as_nanos() as u64))
        };
        let mut at = self.now + link.latency + jitter + link.transmission_delay(len);
        if link.fifo {
            let horizon = self.fifo_horizon.entry((from, to)).or_insert(SimTime::ZERO);
            if at < *horizon {
                at = *horizon;
            }
            *horizon = at;
        }
        self.tap(TapEvent {
            sent_at: self.now,
            deliver_at: Some(at),
            from,
            to,
            len,
            disposition: TapDisposition::Scheduled,
        });
        self.push(at, Pending::Deliver { from, to, payload });
    }

    fn dispatch(&mut self, node: NodeId, event: Event) {
        let Some(mut handler) = self.handlers.remove(&node) else {
            self.stats.dropped_no_handler += 1;
            return;
        };
        let mut ctx = SimCtx {
            node,
            now: self.now,
            next_timer: self.next_timer,
            actions: Vec::new(),
        };
        handler(event, &mut ctx);
        self.handlers.insert(node, handler);
        self.next_timer = ctx.next_timer;
        let actions = ctx.actions;
        for action in actions {
            self.apply(node, action);
        }
    }

    /// Processes the next event, if any. Returns whether one was processed.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(item)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(item.at >= self.now, "virtual time must be monotone");
        self.now = item.at;
        match item.pending {
            Pending::Deliver { from, to, payload } => {
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += payload.len() as u64;
                self.dispatch(to, Event::Message { from, payload });
            }
            Pending::Fire { node, token, id } => {
                if !self.cancelled.remove(&id) {
                    self.stats.timers_fired += 1;
                    self.dispatch(node, Event::Timer { token });
                }
            }
        }
        true
    }

    /// Processes every event scheduled at or before `deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs the simulation forward by `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes events until none remain. Returns the number processed.
    ///
    /// Protocols that continually re-arm periodic timers never quiesce;
    /// use [`SimNet::run_for`] for those, or this method's budgeted
    /// sibling [`SimNet::run_budget`].
    pub fn run_until_quiescent(&mut self) -> usize {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Processes at most `max_events` events; returns how many ran.
    pub fn run_budget(&mut self, max_events: usize) -> usize {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Number of events currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("nodes", &self.topology.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::LinkConfig;

    fn collect_node(net: &mut SimNet, node: NodeId) -> Rc<RefCell<Vec<(NodeId, Bytes)>>> {
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        net.set_handler(node, move |event, _ctx| {
            if let Event::Message { from, payload } = event {
                log2.borrow_mut().push((from, payload));
            }
        });
        log
    }

    #[test]
    fn delivers_with_link_latency() {
        let mut net = SimNet::new(
            Topology::uniform(LinkConfig::new(Duration::from_millis(10))),
            1,
        );
        let a = net.add_node();
        let b = net.add_node();
        let log = collect_node(&mut net, b);
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"x")));
        assert!(log.borrow().is_empty());
        net.run_until_quiescent();
        assert_eq!(net.now(), SimTime::from_millis(10));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(log.borrow()[0].0, a);
    }

    #[test]
    fn fifo_links_preserve_send_order_despite_jitter() {
        let link = LinkConfig::new(Duration::from_millis(5)).with_jitter(Duration::from_millis(50));
        let mut net = SimNet::new(Topology::uniform(link), 42);
        let a = net.add_node();
        let b = net.add_node();
        let log = collect_node(&mut net, b);
        net.with_ctx(a, |ctx| {
            for i in 0..20u8 {
                ctx.send(b, Bytes::from(vec![i]));
            }
        });
        net.run_until_quiescent();
        let got: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let link = LinkConfig::new(Duration::from_millis(5))
            .with_jitter(Duration::from_millis(50))
            .with_fifo(false);
        let mut net = SimNet::new(Topology::uniform(link), 42);
        let a = net.add_node();
        let b = net.add_node();
        let log = collect_node(&mut net, b);
        net.with_ctx(a, |ctx| {
            for i in 0..50u8 {
                ctx.send(b, Bytes::from(vec![i]));
            }
        });
        net.run_until_quiescent();
        let got: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
        assert_eq!(got.len(), 50);
        assert_ne!(got, (0..50).collect::<Vec<u8>>(), "expected reordering");
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let link = LinkConfig::new(Duration::from_millis(1)).with_loss(0.5);
        let run = |seed: u64| {
            let mut net = SimNet::new(Topology::uniform(link), seed);
            let a = net.add_node();
            let b = net.add_node();
            let log = collect_node(&mut net, b);
            net.with_ctx(a, |ctx| {
                for i in 0..100u8 {
                    ctx.send(b, Bytes::from(vec![i]));
                }
            });
            net.run_until_quiescent();
            let delivered: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
            (delivered, net.stats())
        };
        let (d1, s1) = run(9);
        let (d2, s2) = run(9);
        assert_eq!(d1, d2, "same seed must give identical runs");
        assert_eq!(s1, s2);
        assert!(s1.dropped_loss > 20 && s1.dropped_loss < 80);
        let (d3, _) = run(10);
        assert_ne!(d1, d3, "different seed should differ");
    }

    #[test]
    fn partitions_cut_and_heal() {
        let mut net = SimNet::new(Topology::lan(), 3);
        let a = net.add_node();
        let b = net.add_node();
        let log = collect_node(&mut net, b);
        net.topology_mut().partition(a, b);
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"lost")));
        net.run_until_quiescent();
        assert_eq!(log.borrow().len(), 0);
        assert_eq!(net.stats().dropped_partition, 1);
        net.topology_mut().heal(a, b);
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"ok")));
        net.run_until_quiescent();
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut net = SimNet::new(Topology::lan(), 3);
        let a = net.add_node();
        let fired = Rc::new(RefCell::new(Vec::new()));
        let fired2 = fired.clone();
        net.set_handler(a, move |event, _ctx| {
            if let Event::Timer { token } = event {
                fired2.borrow_mut().push(token.0);
            }
        });
        let cancel_me = net.with_ctx(a, |ctx| {
            ctx.set_timer(Duration::from_millis(30), TimerToken(3));
            ctx.set_timer(Duration::from_millis(10), TimerToken(1));
            ctx.set_timer(Duration::from_millis(20), TimerToken(2))
        });
        net.with_ctx(a, |ctx| ctx.cancel_timer(cancel_me));
        net.run_until_quiescent();
        assert_eq!(*fired.borrow(), vec![1, 3]);
        assert_eq!(net.stats().timers_set, 3);
        assert_eq!(net.stats().timers_fired, 2);
    }

    #[test]
    fn handlers_can_rearm_periodic_timers() {
        let mut net = SimNet::new(Topology::lan(), 3);
        let a = net.add_node();
        let count = Rc::new(RefCell::new(0u32));
        let count2 = count.clone();
        net.set_handler(a, move |event, ctx| {
            if let Event::Timer { token } = event {
                *count2.borrow_mut() += 1;
                ctx.set_timer(Duration::from_millis(10), token);
            }
        });
        net.with_ctx(a, |ctx| {
            ctx.set_timer(Duration::from_millis(10), TimerToken(0));
        });
        net.run_for(Duration::from_millis(105));
        assert_eq!(*count.borrow(), 10);
        assert_eq!(net.now(), SimTime::from_millis(105));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut net = SimNet::new(Topology::lan(), 0);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
    }

    #[test]
    fn tap_observes_dispositions() {
        let link = LinkConfig::new(Duration::from_millis(1)).with_loss(1.0);
        let mut net = SimNet::new(Topology::uniform(link), 0);
        let a = net.add_node();
        let b = net.add_node();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        net.set_tap(move |e| seen2.borrow_mut().push(e.disposition));
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"gone")));
        net.run_until_quiescent();
        assert_eq!(*seen.borrow(), vec![TapDisposition::DroppedLoss]);
    }

    #[test]
    fn message_to_handlerless_node_counts() {
        let mut net = SimNet::new(Topology::lan(), 0);
        let a = net.add_node();
        let b = net.add_node();
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"?")));
        net.run_until_quiescent();
        assert_eq!(net.stats().dropped_no_handler, 1);
    }

    #[test]
    fn bandwidth_adds_transmission_delay() {
        let link = LinkConfig::new(Duration::from_millis(1)).with_bandwidth(1_000); // 1 KB/s
        let mut net = SimNet::new(Topology::uniform(link), 0);
        let a = net.add_node();
        let b = net.add_node();
        let log = collect_node(&mut net, b);
        net.with_ctx(a, |ctx| ctx.send(b, Bytes::from(vec![0u8; 500])));
        net.run_until_quiescent();
        // 1 ms latency + 500 ms serialization.
        assert_eq!(net.now(), SimTime::from_millis(501));
        assert_eq!(log.borrow().len(), 1);
    }
}
