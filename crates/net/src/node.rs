//! Node identity.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// Identifies one address space (one simulated or real process) on the
/// network.
///
/// In the paper's terms a node hosts zero or more *local objects*; a Web
/// server, a proxy cache, and a browser each run in their own node.
///
/// # Examples
///
/// ```
/// use globe_net::NodeId;
///
/// let server = NodeId::new(0);
/// assert_eq!(server.to_string(), "n0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl WireEncode for NodeId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.0);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireDecode for NodeId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(NodeId(u32::decode(buf)?))
    }
}

/// A logical region of the network (for example a continent or an ISP).
///
/// Regions drive default link latencies and nearest-replica selection in
/// the location service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(u16);

impl RegionId {
    /// Creates a region id from its raw index.
    pub const fn new(raw: u16) -> Self {
        RegionId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl WireEncode for RegionId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.0);
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl WireDecode for RegionId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(RegionId(u16::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(RegionId::new(3).to_string(), "r3");
    }

    #[test]
    fn wire_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(
            globe_wire::from_bytes::<NodeId>(&globe_wire::to_bytes(&n)).unwrap(),
            n
        );
        let r = RegionId::new(9);
        assert_eq!(
            globe_wire::from_bytes::<RegionId>(&globe_wire::to_bytes(&r)).unwrap(),
            r
        );
    }
}
