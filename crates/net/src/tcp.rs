//! Real-socket runtime: a mesh of TCP connections on the loopback device.
//!
//! The mesh delivers the same [`Event`] stream through the same [`NetCtx`]
//! interface as the simulator, so any protocol validated deterministically
//! in [`crate::SimNet`] runs unmodified over real sockets. Frames are
//! length-prefixed; the first frame on every connection carries the
//! sender's [`NodeId`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::timer::WallTimer;
use crate::{Event, NetCtx, NodeId, SimTime, TimerId, TimerToken};

/// Errors surfaced by the TCP mesh.
#[derive(Debug)]
pub enum MeshError {
    /// An `std::io` operation failed.
    Io(std::io::Error),
    /// The peer node has not been registered with the mesh.
    UnknownPeer(NodeId),
    /// The mesh has been shut down.
    ShutDown,
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::Io(e) => write!(f, "i/o failure in tcp mesh: {e}"),
            MeshError::UnknownPeer(n) => write!(f, "peer {n} is not registered"),
            MeshError::ShutDown => write!(f, "mesh has been shut down"),
        }
    }
}

impl std::error::Error for MeshError {}

impl From<std::io::Error> for MeshError {
    fn from(e: std::io::Error) -> Self {
        MeshError::Io(e)
    }
}

const MAX_FRAME: u32 = 256 * 1024 * 1024;

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() as u32).to_be_bytes();
    stream.write_all(&len)?;
    stream.write_all(payload)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds limit",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Cumulative transport-fault counters for one mesh, so a deployment can
/// observe disconnects and rejected frames instead of crashing on them.
#[derive(Debug, Default)]
struct MeshFaults {
    /// Sends that failed (connect refused, broken pipe, shut-down mesh).
    send_errors: AtomicU64,
    /// Established connections whose reader loop ended: the peer went
    /// away, or sent a garbled/oversized frame after the hello.
    disconnects: AtomicU64,
    /// Inbound connections rejected before entering service (unreadable
    /// or malformed hello, reader spawn failure).
    rejected_frames: AtomicU64,
    /// Service threads the OS refused to spawn (node event loops, the
    /// timer thread): the mesh degrades observably instead of panicking.
    spawn_failures: AtomicU64,
}

/// A point-in-time snapshot of a mesh's transport-fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshFaultStats {
    /// Sends that failed (connect refused, broken pipe, shut-down mesh).
    pub send_errors: u64,
    /// Established connections that ended: peer gone, or a
    /// garbled/oversized frame after the hello.
    pub disconnects: u64,
    /// Inbound connections rejected before entering service (bad hello,
    /// reader spawn failure).
    pub rejected_frames: u64,
    /// Service threads the OS refused to spawn (node event loops, the
    /// timer thread).
    pub spawn_failures: u64,
}

struct MeshShared {
    addrs: RwLock<HashMap<NodeId, SocketAddr>>,
    timer: Arc<WallTimer>,
    epoch: Instant,
    shutdown: AtomicBool,
    faults: MeshFaults,
}

/// A mesh of real TCP endpoints on the loopback interface.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use globe_net::{tcp::TcpMesh, Event, NetCtx};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = TcpMesh::new();
/// let mut a = mesh.add_node()?;
/// let mut b = mesh.add_node()?;
/// let (an, bn) = (a.node(), b.node());
/// a.sender().send(bn, Bytes::from_static(b"ping"))?;
/// match b.recv_timeout(std::time::Duration::from_secs(5)) {
///     Some(Event::Message { from, payload }) => {
///         assert_eq!(from, an);
///         assert_eq!(&payload[..], b"ping");
///     }
///     other => panic!("expected message, got {other:?}"),
/// }
/// mesh.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct TcpMesh {
    shared: Arc<MeshShared>,
    next_node: AtomicU64,
}

impl TcpMesh {
    /// Creates an empty mesh (and its timer service thread). If the
    /// timer thread cannot be spawned the mesh still constructs —
    /// degraded, with timers inert — and the failure is counted in
    /// [`TcpMesh::fault_stats`] instead of panicking.
    pub fn new() -> Self {
        let timer = WallTimer::spawn();
        let timer_failed = timer.is_stopped();
        let mesh = TcpMesh {
            shared: Arc::new(MeshShared {
                addrs: RwLock::new(HashMap::new()),
                timer,
                epoch: Instant::now(),
                shutdown: AtomicBool::new(false),
                faults: MeshFaults::default(),
            }),
            next_node: AtomicU64::new(0),
        };
        if timer_failed {
            mesh.shared
                .faults
                .spawn_failures
                .fetch_add(1, Ordering::Relaxed);
        }
        mesh
    }

    /// Binds a listener for a new node and returns its endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Io`] if the listener cannot be bound.
    pub fn add_node(&self) -> Result<TcpEndpoint, MeshError> {
        let node = NodeId::new(self.next_node.fetch_add(1, Ordering::Relaxed) as u32);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        self.shared.addrs.write().insert(node, addr);
        let (inbox_tx, inbox_rx) = unbounded();
        let endpoint = TcpEndpoint {
            node,
            shared: Arc::clone(&self.shared),
            inbox_rx,
            inbox_tx: inbox_tx.clone(),
            conns: Arc::new(Mutex::new(HashMap::new())),
        };
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name(format!("globe-accept-{node}"))
            .spawn(move || accept_loop(listener, inbox_tx, shared))
            .map_err(MeshError::Io)?;
        Ok(endpoint)
    }

    /// A snapshot of the mesh's cumulative transport-fault counters.
    pub fn fault_stats(&self) -> MeshFaultStats {
        self.shared.fault_stats()
    }

    /// Stops the timer service and marks the mesh as shut down. Endpoint
    /// receive loops observe the flag through [`TcpEndpoint::recv_timeout`]
    /// returning `None`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.timer.stop();
    }

    /// Wall-clock origin used for [`NetCtx::now`] values.
    pub fn epoch(&self) -> Instant {
        self.shared.epoch
    }
}

impl Default for TcpMesh {
    fn default() -> Self {
        TcpMesh::new()
    }
}

impl std::fmt::Debug for TcpMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpMesh")
            .field("nodes", &self.shared.addrs.read().len())
            .finish()
    }
}

impl MeshShared {
    fn fault_stats(&self) -> MeshFaultStats {
        MeshFaultStats {
            send_errors: self.faults.send_errors.load(Ordering::Relaxed),
            disconnects: self.faults.disconnects.load(Ordering::Relaxed),
            rejected_frames: self.faults.rejected_frames.load(Ordering::Relaxed),
            spawn_failures: self.faults.spawn_failures.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(listener: TcpListener, inbox: Sender<Event>, shared: Arc<MeshShared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let inbox = inbox.clone();
        let reader_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("globe-reader".into())
            .spawn(move || {
                // First frame identifies the peer; a connection that
                // cannot even say hello is rejected, not crashed on.
                let Ok(hello) = read_frame(&mut stream) else {
                    reader_shared
                        .faults
                        .rejected_frames
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                };
                if hello.len() != 4 {
                    reader_shared
                        .faults
                        .rejected_frames
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let from =
                    NodeId::new(u32::from_be_bytes([hello[0], hello[1], hello[2], hello[3]]));
                while let Ok(frame) = read_frame(&mut stream) {
                    if inbox
                        .send(Event::Message {
                            from,
                            payload: Bytes::from(frame),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                // The peer hung up (or sent an oversized/garbled length):
                // an observable disconnect, not a panic.
                reader_shared
                    .faults
                    .disconnects
                    .fetch_add(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            // Out of threads: drop the connection rather than crash the
            // accept loop; the peer's sends surface as its own errors.
            shared
                .faults
                .rejected_frames
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One node's connection to the mesh: an inbox plus outbound links.
pub struct TcpEndpoint {
    node: NodeId,
    shared: Arc<MeshShared>,
    inbox_rx: Receiver<Event>,
    inbox_tx: Sender<Event>,
    conns: Arc<Mutex<HashMap<NodeId, TcpStream>>>,
}

impl TcpEndpoint {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks up to `timeout` for the next event. Returns `None` on
    /// timeout or when the mesh has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Event> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        self.inbox_rx.recv_timeout(timeout).ok()
    }

    /// A cloneable handle for sending from other threads.
    pub fn sender(&self) -> TcpSender {
        TcpSender {
            node: self.node,
            shared: Arc::clone(&self.shared),
            conns: Arc::clone(&self.conns),
        }
    }

    /// A [`NetCtx`] for use while handling one event.
    pub fn ctx(&mut self) -> TcpCtx<'_> {
        TcpCtx { endpoint: self }
    }

    /// Runs `handler` for every incoming event until the mesh shuts down,
    /// polling at `poll` granularity. Intended to be called on a dedicated
    /// thread per node.
    pub fn run_loop<F>(mut self, poll: Duration, mut handler: F)
    where
        F: FnMut(Event, &mut dyn NetCtx),
    {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(event) = self.recv_timeout(poll) {
                let mut ctx = TcpCtx {
                    endpoint: &mut self,
                };
                handler(event, &mut ctx);
            }
        }
    }

    /// Spawns [`TcpEndpoint::run_loop`] on a named thread.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the thread cannot be spawned; the failure
    /// is also counted in the mesh's [`TcpMesh::fault_stats`] so a live
    /// deployment observes the degraded node instead of crashing.
    pub fn spawn_loop<F>(self, handler: F) -> std::io::Result<JoinHandle<()>>
    where
        F: FnMut(Event, &mut dyn NetCtx) + Send + 'static,
    {
        let name = format!("globe-node-{}", self.node);
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || self.run_loop(Duration::from_millis(20), handler))
            .inspect_err(|_| {
                shared.faults.spawn_failures.fetch_add(1, Ordering::Relaxed);
            })
    }

    fn send_inner(&self, to: NodeId, payload: &Bytes) -> Result<(), MeshError> {
        send_via(&self.shared, self.node, &self.conns, to, payload)
    }
}

impl std::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("node", &self.node)
            .finish()
    }
}

fn send_via(
    shared: &MeshShared,
    from: NodeId,
    conns: &Mutex<HashMap<NodeId, TcpStream>>,
    to: NodeId,
    payload: &Bytes,
) -> Result<(), MeshError> {
    let result = send_via_inner(shared, from, conns, to, payload);
    if result.is_err() {
        shared.faults.send_errors.fetch_add(1, Ordering::Relaxed);
    }
    result
}

fn send_via_inner(
    shared: &MeshShared,
    from: NodeId,
    conns: &Mutex<HashMap<NodeId, TcpStream>>,
    to: NodeId,
    payload: &Bytes,
) -> Result<(), MeshError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(MeshError::ShutDown);
    }
    let mut conns = conns.lock();
    // Entry-based connect-or-reuse: the stream handle flows straight out
    // of the entry, so there is no second lookup that could panic if the
    // peer vanished between insert and use.
    let stream = match conns.entry(to) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let addr = *shared
                .addrs
                .read()
                .get(&to)
                .ok_or(MeshError::UnknownPeer(to))?;
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            write_frame(&mut stream, &from.raw().to_be_bytes())?;
            e.insert(stream)
        }
    };
    if let Err(e) = write_frame(stream, payload) {
        // Drop the broken connection so a later send can re-establish
        // it. Counted once, as a send error by the caller wrapper (the
        // peer's reader side accounts the disconnect itself).
        conns.remove(&to);
        return Err(MeshError::Io(e));
    }
    Ok(())
}

/// Cloneable sending handle usable from any thread.
#[derive(Clone)]
pub struct TcpSender {
    node: NodeId,
    shared: Arc<MeshShared>,
    conns: Arc<Mutex<HashMap<NodeId, TcpStream>>>,
}

impl TcpSender {
    /// Sends `payload` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError`] if the peer is unknown, the mesh is shut
    /// down, or the connection fails.
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), MeshError> {
        send_via(&self.shared, self.node, &self.conns, to, &payload)
    }
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("node", &self.node)
            .finish()
    }
}

/// [`NetCtx`] implementation for one event being handled on a TCP node.
pub struct TcpCtx<'a> {
    endpoint: &'a mut TcpEndpoint,
}

impl NetCtx for TcpCtx<'_> {
    fn node(&self) -> NodeId {
        self.endpoint.node
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.endpoint.shared.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&mut self, to: NodeId, payload: Bytes) {
        // Datagram semantics: failures are silent, like simulator loss.
        let _ = self.endpoint.send_inner(to, &payload);
    }

    fn set_timer(&mut self, delay: Duration, token: TimerToken) -> TimerId {
        let inbox = self.endpoint.inbox_tx.clone();
        self.endpoint.shared.timer.arm(delay, move || {
            // Receiver may be gone during shutdown; ignore.
            let _ = inbox.send(Event::Timer { token });
        })
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.endpoint.shared.timer.cancel(id);
    }
}

impl std::fmt::Debug for TcpCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCtx")
            .field("node", &self.node())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_over_sockets() {
        let mesh = TcpMesh::new();
        let a = mesh.add_node().unwrap();
        let b = mesh.add_node().unwrap();
        let (an, bn) = (a.node(), b.node());

        let b_handle = b
            .spawn_loop(move |event, ctx| {
                if let Event::Message { from, payload } = event {
                    assert_eq!(from, an);
                    ctx.send(from, payload);
                }
            })
            .expect("test host can spawn a node thread");

        a.sender().send(bn, Bytes::from_static(b"ping")).unwrap();
        match a.recv_timeout(Duration::from_secs(5)) {
            Some(Event::Message { from, payload }) => {
                assert_eq!(from, bn);
                assert_eq!(&payload[..], b"ping");
            }
            other => panic!("expected echo, got {other:?}"),
        }
        mesh.shutdown();
        let _ = b_handle.join();
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let mesh = TcpMesh::new();
        let mut a = mesh.add_node().unwrap();
        let id = a.ctx().set_timer(Duration::from_millis(30), TimerToken(5));
        let _ = id;
        match a.recv_timeout(Duration::from_secs(5)) {
            Some(Event::Timer { token }) => assert_eq!(token, TimerToken(5)),
            other => panic!("expected timer, got {other:?}"),
        }
        mesh.shutdown();
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mesh = TcpMesh::new();
        let mut a = mesh.add_node().unwrap();
        let id = a.ctx().set_timer(Duration::from_millis(50), TimerToken(1));
        a.ctx().cancel_timer(id);
        a.ctx().set_timer(Duration::from_millis(100), TimerToken(2));
        match a.recv_timeout(Duration::from_secs(5)) {
            Some(Event::Timer { token }) => assert_eq!(token, TimerToken(2)),
            other => panic!("expected timer 2, got {other:?}"),
        }
        mesh.shutdown();
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let mesh = TcpMesh::new();
        let a = mesh.add_node().unwrap();
        let err = a
            .sender()
            .send(NodeId::new(99), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, MeshError::UnknownPeer(_)));
        mesh.shutdown();
    }

    #[test]
    fn send_failures_are_counted_not_fatal() {
        let mesh = TcpMesh::new();
        let a = mesh.add_node().unwrap();
        assert_eq!(mesh.fault_stats().send_errors, 0);
        // Unknown peer: an error result plus a counted fault.
        let _ = a.sender().send(NodeId::new(99), Bytes::from_static(b"x"));
        assert_eq!(mesh.fault_stats().send_errors, 1);
        // After shutdown every send fails observably.
        mesh.shutdown();
        let _ = a.sender().send(NodeId::new(99), Bytes::from_static(b"y"));
        assert_eq!(mesh.fault_stats().send_errors, 2);
    }

    #[test]
    fn peer_disconnect_is_counted_and_survivable() {
        let mesh = TcpMesh::new();
        let a = mesh.add_node().unwrap();
        let b = mesh.add_node().unwrap();
        let bn = b.node();
        // Establish a live connection a -> b.
        a.sender().send(bn, Bytes::from_static(b"hello")).unwrap();
        assert!(matches!(
            b.recv_timeout(Duration::from_secs(5)),
            Some(Event::Message { .. })
        ));
        // b goes away: its inbox (and reader ends) drop with it.
        drop(b);
        // The next sends hit the broken pipe eventually; the connection
        // is dropped and the failure counted instead of panicking at
        // "connection just inserted". (The OS may buffer a write or two
        // before surfacing the broken pipe, so retry a few times.)
        let mut failed = false;
        for _ in 0..500 {
            if a.sender().send(bn, Bytes::from_static(b"late")).is_err() {
                failed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(failed, "a send to a dead peer must eventually error");
        assert!(mesh.fault_stats().send_errors >= 1);
        mesh.shutdown();
    }

    #[test]
    fn many_messages_preserve_order() {
        let mesh = TcpMesh::new();
        let a = mesh.add_node().unwrap();
        let b = mesh.add_node().unwrap();
        let sender = a.sender();
        let bn = b.node();
        for i in 0..200u32 {
            sender
                .send(bn, Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 200 {
            match b.recv_timeout(Duration::from_secs(5)) {
                Some(Event::Message { payload, .. }) => {
                    got.push(u32::from_be_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]));
                }
                _ => break,
            }
        }
        assert_eq!(got, (0..200).collect::<Vec<u32>>());
        mesh.shutdown();
    }
}
