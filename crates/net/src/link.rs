//! Per-link network characteristics.

use std::time::Duration;

/// Transmission characteristics of a directed link between two nodes.
///
/// The simulator computes a message's delivery time as
/// `now + latency + U(0, jitter) + len / bandwidth`, drops it with
/// probability `loss`, and — when `fifo` is set — never delivers it before
/// a message sent earlier on the same link (modelling a TCP connection, as
/// used by the paper's prototype; clear `fifo` to model UDP for the §4.2
/// reliability experiment).
///
/// # Examples
///
/// ```
/// use globe_net::LinkConfig;
/// use std::time::Duration;
///
/// let wan = LinkConfig::new(Duration::from_millis(80))
///     .with_jitter(Duration::from_millis(20))
///     .with_loss(0.01);
/// assert_eq!(wan.latency, Duration::from_millis(80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed one-way propagation delay.
    pub latency: Duration,
    /// Upper bound of the uniformly distributed extra delay.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
    /// Link bandwidth in bytes per second; `None` means infinite.
    pub bandwidth: Option<u64>,
    /// Whether the link preserves send order (TCP-like).
    pub fifo: bool,
}

impl LinkConfig {
    /// Creates a lossless, order-preserving link with the given latency and
    /// no jitter or bandwidth cap.
    pub fn new(latency: Duration) -> Self {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            loss: 0.0,
            bandwidth: None,
            fifo: true,
        }
    }

    /// Sets the jitter bound.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        self.loss = loss;
        self
    }

    /// Sets the bandwidth in bytes per second.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Sets whether the link preserves send order.
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Serialization delay for a message of `len` bytes.
    pub fn transmission_delay(&self, len: usize) -> Duration {
        match self.bandwidth {
            None => Duration::ZERO,
            Some(bps) => {
                let ns = (len as u128 * 1_000_000_000) / bps.max(1) as u128;
                Duration::from_nanos(ns as u64)
            }
        }
    }
}

impl Default for LinkConfig {
    /// A LAN-like default: 1 ms latency, lossless, FIFO, infinite bandwidth.
    fn default() -> Self {
        LinkConfig::new(Duration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let l = LinkConfig::new(Duration::from_millis(10))
            .with_jitter(Duration::from_millis(2))
            .with_loss(0.5)
            .with_bandwidth(1_000)
            .with_fifo(false);
        assert_eq!(l.jitter, Duration::from_millis(2));
        assert_eq!(l.loss, 0.5);
        assert_eq!(l.bandwidth, Some(1_000));
        assert!(!l.fifo);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn loss_out_of_range_panics() {
        let _ = LinkConfig::default().with_loss(1.5);
    }

    #[test]
    fn transmission_delay_scales_with_len() {
        let l = LinkConfig::default().with_bandwidth(1_000_000); // 1 MB/s
        assert_eq!(l.transmission_delay(1_000_000), Duration::from_secs(1));
        assert_eq!(l.transmission_delay(0), Duration::ZERO);
        let unlimited = LinkConfig::default();
        assert_eq!(unlimited.transmission_delay(1 << 30), Duration::ZERO);
    }
}
