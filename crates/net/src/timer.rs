//! A shared wall-clock timer service for the threaded runtimes.
//!
//! The simulator schedules timers in virtual time inside its event heap;
//! runtimes that live on real threads (the TCP mesh, the in-process
//! sharded backend of `globe-core`) need the same [`crate::NetCtx`]
//! timer semantics against the wall clock. [`WallTimer`] provides it: a
//! single background thread sleeps until the earliest deadline and then
//! runs the timer's delivery closure, so each runtime decides for itself
//! what "deliver a timer event" means (push onto a socket endpoint's
//! inbox, route into a shard worker's channel, ...).

use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::TimerId;

struct TimerEntry {
    deadline: Instant,
    id: TimerId,
    deliver: Box<dyn FnOnce() + Send>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.id == other.id
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.id.0.cmp(&self.id.0))
    }
}

/// A wall-clock timer wheel running on its own thread.
///
/// Arm a timer with a delivery closure; the service invokes the closure
/// on the timer thread once the deadline passes, unless the timer was
/// cancelled first. Delivery closures should only hand the event off
/// (send on a channel) — they run on the shared timer thread.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use globe_net::timer::WallTimer;
///
/// let timer = WallTimer::spawn();
/// let (tx, rx) = std::sync::mpsc::channel();
/// timer.arm(Duration::from_millis(10), move || {
///     let _ = tx.send("fired");
/// });
/// assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok("fired"));
/// timer.stop();
/// ```
pub struct WallTimer {
    heap: Mutex<BinaryHeap<TimerEntry>>,
    cancelled: Mutex<HashSet<TimerId>>,
    cond: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl WallTimer {
    /// Creates the service and spawns its timer thread.
    ///
    /// If the OS refuses the thread (resource exhaustion), the returned
    /// service is *degraded* rather than the process panicking: it is
    /// born shut down, so armed timers never fire and their closures are
    /// dropped immediately. Callers that need to distinguish the two
    /// outcomes use [`WallTimer::try_spawn`] and count the failure.
    pub fn spawn() -> Arc<Self> {
        WallTimer::try_spawn().unwrap_or_else(|_| {
            let service = WallTimer::service();
            service.stop();
            service
        })
    }

    /// Creates the service and spawns its timer thread, surfacing the
    /// spawn failure as an [`std::io::Error`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the timer thread cannot be spawned.
    pub fn try_spawn() -> std::io::Result<Arc<Self>> {
        let service = WallTimer::service();
        let worker = Arc::clone(&service);
        std::thread::Builder::new()
            .name("globe-timer".into())
            .spawn(move || worker.run())?;
        Ok(service)
    }

    fn service() -> Arc<Self> {
        Arc::new(WallTimer {
            heap: Mutex::new(BinaryHeap::new()),
            cancelled: Mutex::new(HashSet::new()),
            cond: Condvar::new(),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Whether the service has been stopped (or was born degraded because
    /// its thread failed to spawn): armed timers will never fire.
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Arms a timer: after `delay`, `deliver` runs on the timer thread.
    /// After [`WallTimer::stop`] the closure is dropped immediately and
    /// the returned id is inert.
    pub fn arm(&self, delay: Duration, deliver: impl FnOnce() + Send + 'static) -> TimerId {
        let id = TimerId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut heap = self.heap.lock();
        // Checked under the heap lock: stop() flips the flag and drains
        // the heap under the same lock, so an entry can never slip into
        // the heap after the drain.
        if self.shutdown.load(Ordering::SeqCst) {
            return id;
        }
        heap.push(TimerEntry {
            deadline: Instant::now() + delay,
            id,
            deliver: Box::new(deliver),
        });
        drop(heap);
        self.cond.notify_one();
        id
    }

    /// Cancels a pending timer; a no-op if it already fired.
    pub fn cancel(&self, id: TimerId) {
        self.cancelled.lock().insert(id);
    }

    /// Stops the timer thread; pending timers never fire.
    pub fn stop(&self) {
        // Flag and drain under one heap lock, pairing with the locked
        // check in arm(): delivery closures may hold strong references
        // back into the runtime that owns this service (the shard
        // router does), and an entry left — or raced — into the heap
        // would keep that reference cycle alive forever.
        let mut heap = self.heap.lock();
        self.shutdown.store(true, Ordering::SeqCst);
        heap.clear();
        drop(heap);
        self.cancelled.lock().clear();
        self.cond.notify_one();
    }

    fn run(&self) {
        let mut heap = self.heap.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            if let Some(head) = heap.peek() {
                if head.deadline <= now {
                    if let Some(entry) = heap.pop() {
                        let skip = self.cancelled.lock().remove(&entry.id);
                        if !skip {
                            (entry.deliver)();
                        }
                    }
                    continue;
                }
                let wait = head.deadline.saturating_duration_since(now);
                self.cond.wait_for(&mut heap, wait);
            } else {
                self.cond.wait_for(&mut heap, Duration::from_millis(100));
            }
        }
    }
}

impl std::fmt::Debug for WallTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WallTimer")
            .field("pending", &self.heap.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_in_deadline_order() {
        let timer = WallTimer::spawn();
        let (tx, rx) = std::sync::mpsc::channel();
        let early = tx.clone();
        timer.arm(Duration::from_millis(60), move || {
            let _ = tx.send(2u32);
        });
        timer.arm(Duration::from_millis(20), move || {
            let _ = early.send(1u32);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
        timer.stop();
    }

    #[test]
    fn cancelled_timer_never_delivers() {
        let timer = WallTimer::spawn();
        let (tx, rx) = std::sync::mpsc::channel();
        let cancelled = tx.clone();
        let id = timer.arm(Duration::from_millis(20), move || {
            let _ = cancelled.send("cancelled");
        });
        timer.cancel(id);
        timer.arm(Duration::from_millis(60), move || {
            let _ = tx.send("kept");
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok("kept"));
        timer.stop();
    }
}
