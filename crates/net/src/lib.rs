//! Network substrate for the Globe Web-object framework.
//!
//! The ICDCS'98 paper runs its prototype "in Java 1.1 on top of the
//! Internet" over TCP/IP. This crate supplies the equivalent substrate in
//! two interchangeable forms behind one event/handler interface
//! ([`Event`] / [`NetCtx`]):
//!
//! * [`SimNet`] — a deterministic, virtual-time discrete-event simulator
//!   with per-link latency, jitter, loss, bandwidth, FIFO-ness, and
//!   partitions. All tests, coherence checking, and benchmarks run here,
//!   because a seeded run is exactly reproducible.
//! * [`tcp::TcpMesh`] — real TCP sockets on loopback with the same framing
//!   and the same handler signature, demonstrating the protocols are not
//!   simulator artifacts.
//!
//! Threaded transports keep [`NetCtx`] timer semantics against the wall
//! clock through the shared [`timer::WallTimer`] service; the TCP mesh
//! and the in-process sharded runtime of `globe-core` both use it.
//!
//! Protocol code upstack (the replication objects of `globe-core`) is
//! written sans-IO against [`NetCtx`] and cannot tell which substrate is
//! driving it.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use globe_net::{Event, SimNet, Topology};
//!
//! let mut net = SimNet::new(Topology::wan(), 1);
//! let server = net.add_node();
//! let cache = net.add_node();
//! net.set_handler(cache, |event, _ctx| {
//!     if let Event::Message { payload, .. } = event {
//!         assert_eq!(&payload[..], b"update");
//!     }
//! });
//! net.with_ctx(server, |ctx| ctx.send(cache, Bytes::from_static(b"update")));
//! net.run_until_quiescent();
//! assert_eq!(net.stats().messages_delivered, 1);
//! ```

#![warn(missing_docs)]

mod event;
mod link;
mod node;
mod sim;
mod stats;
pub mod tcp;
mod time;
pub mod timer;
mod topology;

pub use event::{Event, NetCtx, TimerId, TimerToken};
pub use link::LinkConfig;
pub use node::{NodeId, RegionId};
pub use sim::{SimNet, TapDisposition, TapEvent};
pub use stats::NetStats;
pub use time::SimTime;
pub use topology::Topology;
