//! Network-level traffic accounting.

use std::fmt;
use std::ops::Sub;

/// Counters maintained by the simulator (and, partially, the TCP mesh).
///
/// All counts are cumulative since construction; use the `Sub` impl to get
/// a per-phase delta:
///
/// ```
/// use globe_net::NetStats;
///
/// let before = NetStats::default();
/// let mut after = NetStats::default();
/// after.messages_sent = 10;
/// let delta = after - before;
/// assert_eq!(delta.messages_sent, 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (before loss/partition filtering).
    pub messages_sent: u64,
    /// Messages actually delivered to a handler.
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped_loss: u64,
    /// Messages dropped because the pair was partitioned.
    pub dropped_partition: u64,
    /// Messages addressed to a node with no registered handler.
    pub dropped_no_handler: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers that fired (excludes cancelled ones).
    pub timers_fired: u64,
}

impl NetStats {
    /// Total messages dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_no_handler
    }
}

impl Sub for NetStats {
    type Output = NetStats;

    fn sub(self, rhs: NetStats) -> NetStats {
        NetStats {
            messages_sent: self.messages_sent - rhs.messages_sent,
            messages_delivered: self.messages_delivered - rhs.messages_delivered,
            dropped_loss: self.dropped_loss - rhs.dropped_loss,
            dropped_partition: self.dropped_partition - rhs.dropped_partition,
            dropped_no_handler: self.dropped_no_handler - rhs.dropped_no_handler,
            bytes_sent: self.bytes_sent - rhs.bytes_sent,
            bytes_delivered: self.bytes_delivered - rhs.bytes_delivered,
            timers_set: self.timers_set - rhs.timers_set,
            timers_fired: self.timers_fired - rhs.timers_fired,
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} bytes={}",
            self.messages_sent,
            self.messages_delivered,
            self.dropped(),
            self.bytes_sent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtraction() {
        let a = NetStats {
            messages_sent: 5,
            bytes_sent: 100,
            ..NetStats::default()
        };
        let b = NetStats {
            messages_sent: 8,
            bytes_sent: 160,
            ..a
        };
        let d = b - a;
        assert_eq!(d.messages_sent, 3);
        assert_eq!(d.bytes_sent, 60);
    }

    #[test]
    fn dropped_sums_all_causes() {
        let s = NetStats {
            dropped_loss: 1,
            dropped_partition: 2,
            dropped_no_handler: 3,
            ..NetStats::default()
        };
        assert_eq!(s.dropped(), 6);
        assert!(!s.to_string().is_empty());
    }
}
