//! Network topology: regions, per-pair link overrides, and partitions.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use crate::{LinkConfig, NodeId, RegionId};

/// Describes how every pair of nodes is connected.
///
/// Link resolution order for a directed pair `(a, b)`:
///
/// 1. if `(a, b)` is partitioned, the message is dropped;
/// 2. an explicit per-pair override, if any;
/// 3. the intra-region default if `a` and `b` share a region;
/// 4. the inter-region default otherwise.
///
/// # Examples
///
/// ```
/// use globe_net::{LinkConfig, Topology};
/// use std::time::Duration;
///
/// let mut topo = Topology::two_region(
///     LinkConfig::new(Duration::from_millis(2)),
///     LinkConfig::new(Duration::from_millis(90)),
/// );
/// let (eu, us) = (topo.add_node_in(globe_net::RegionId::new(0)),
///                 topo.add_node_in(globe_net::RegionId::new(1)));
/// assert_eq!(topo.link(eu, us).latency, Duration::from_millis(90));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    intra_region: LinkConfig,
    inter_region: LinkConfig,
    overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    partitions: HashSet<(NodeId, NodeId)>,
    regions: HashMap<NodeId, RegionId>,
    next_node: u32,
}

impl Topology {
    /// A topology where every link has the same configuration.
    pub fn uniform(link: LinkConfig) -> Self {
        Topology {
            intra_region: link,
            inter_region: link,
            overrides: HashMap::new(),
            partitions: HashSet::new(),
            regions: HashMap::new(),
            next_node: 0,
        }
    }

    /// A topology with distinct intra- and inter-region defaults.
    pub fn two_region(intra: LinkConfig, inter: LinkConfig) -> Self {
        Topology {
            intra_region: intra,
            inter_region: inter,
            ..Topology::uniform(intra)
        }
    }

    /// A LAN topology: 1 ms lossless links.
    pub fn lan() -> Self {
        Topology::uniform(LinkConfig::default())
    }

    /// A WAN-flavoured topology: 5 ms within a region, 80 ms ± 20 ms
    /// between regions.
    pub fn wan() -> Self {
        Topology::two_region(
            LinkConfig::new(Duration::from_millis(5)),
            LinkConfig::new(Duration::from_millis(80)).with_jitter(Duration::from_millis(20)),
        )
    }

    /// Registers a new node in region 0 and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_node_in(RegionId::new(0))
    }

    /// Registers a new node in `region` and returns its id.
    pub fn add_node_in(&mut self, region: RegionId) -> NodeId {
        let id = NodeId::new(self.next_node);
        self.next_node += 1;
        self.regions.insert(id, region);
        id
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.next_node as usize
    }

    /// Whether no nodes have been registered.
    pub fn is_empty(&self) -> bool {
        self.next_node == 0
    }

    /// All registered node ids, in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.next_node).map(NodeId::new)
    }

    /// The region a node was registered in.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.regions.get(&node).copied().unwrap_or_default()
    }

    /// Overrides the link configuration for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) {
        self.overrides.insert((from, to), link);
    }

    /// Overrides the link configuration in both directions.
    pub fn set_link_symmetric(&mut self, a: NodeId, b: NodeId, link: LinkConfig) {
        self.overrides.insert((a, b), link);
        self.overrides.insert((b, a), link);
    }

    /// Resolves the effective link configuration for `(from, to)`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        if let Some(link) = self.overrides.get(&(from, to)) {
            return *link;
        }
        if self.region_of(from) == self.region_of(to) {
            self.intra_region
        } else {
            self.inter_region
        }
    }

    /// Cuts both directions between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Splits the network into two sides; every cross-side link is cut.
    pub fn partition_sets(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.partition(a, b);
            }
        }
    }

    /// Restores both directions between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Whether messages from `from` to `to` are currently cut.
    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.contains(&(from, to))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_select_defaults() {
        let mut t = Topology::two_region(
            LinkConfig::new(Duration::from_millis(1)),
            LinkConfig::new(Duration::from_millis(50)),
        );
        let a = t.add_node_in(RegionId::new(0));
        let b = t.add_node_in(RegionId::new(0));
        let c = t.add_node_in(RegionId::new(1));
        assert_eq!(t.link(a, b).latency, Duration::from_millis(1));
        assert_eq!(t.link(a, c).latency, Duration::from_millis(50));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn overrides_win() {
        let mut t = Topology::lan();
        let a = t.add_node();
        let b = t.add_node();
        t.set_link(a, b, LinkConfig::new(Duration::from_millis(7)));
        assert_eq!(t.link(a, b).latency, Duration::from_millis(7));
        // Reverse direction keeps the default.
        assert_eq!(t.link(b, a).latency, Duration::from_millis(1));
    }

    #[test]
    fn partition_and_heal() {
        let mut t = Topology::lan();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.partition_sets(&[a], &[b, c]);
        assert!(t.is_partitioned(a, b));
        assert!(t.is_partitioned(c, a));
        assert!(!t.is_partitioned(b, c));
        t.heal(a, b);
        assert!(!t.is_partitioned(a, b));
        assert!(t.is_partitioned(a, c));
        t.heal_all();
        assert!(!t.is_partitioned(a, c));
    }

    #[test]
    fn node_iteration_order() {
        let mut t = Topology::lan();
        let ids: Vec<_> = (0..4).map(|_| t.add_node()).collect();
        assert_eq!(t.nodes().collect::<Vec<_>>(), ids);
    }
}
