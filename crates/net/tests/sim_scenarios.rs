//! Simulator scenario tests: multi-node behaviour, budgeted execution,
//! and topology dynamics beyond the unit tests.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use globe_net::{Event, LinkConfig, RegionId, SimNet, SimTime, TimerToken, Topology};

#[test]
fn broadcast_fan_out_reaches_every_node() {
    let mut net = SimNet::new(Topology::lan(), 1);
    let root = net.add_node();
    let leaves: Vec<_> = (0..20).map(|_| net.add_node()).collect();
    let received = Rc::new(RefCell::new(0u32));
    for &leaf in &leaves {
        let received = Rc::clone(&received);
        net.set_handler(leaf, move |event, _ctx| {
            if matches!(event, Event::Message { .. }) {
                *received.borrow_mut() += 1;
            }
        });
    }
    net.with_ctx(root, |ctx| {
        for &leaf in &leaves {
            ctx.send(leaf, Bytes::from_static(b"hello"));
        }
    });
    net.run_until_quiescent();
    assert_eq!(*received.borrow(), 20);
    assert_eq!(net.stats().messages_delivered, 20);
}

#[test]
fn run_budget_caps_event_processing() {
    let mut net = SimNet::new(Topology::lan(), 2);
    let a = net.add_node();
    let b = net.add_node();
    // b echoes forever: an infinite ping-pong.
    net.set_handler(b, |event, ctx| {
        if let Event::Message { from, payload } = event {
            ctx.send(from, payload);
        }
    });
    net.set_handler(a, |event, ctx| {
        if let Event::Message { from, payload } = event {
            ctx.send(from, payload);
        }
    });
    net.with_ctx(a, |ctx| ctx.send(b, Bytes::from_static(b"ping")));
    let processed = net.run_budget(100);
    assert_eq!(processed, 100, "budget must stop the infinite exchange");
    assert!(net.pending_events() > 0);
}

#[test]
fn regions_shape_latency() {
    let mut net = SimNet::new(Topology::wan(), 3);
    let eu1 = net.add_node_in(RegionId::new(0));
    let eu2 = net.add_node_in(RegionId::new(0));
    let us1 = net.add_node_in(RegionId::new(1));
    let seen = Rc::new(RefCell::new(Vec::new()));
    for node in [eu2, us1] {
        let seen = Rc::clone(&seen);
        net.set_handler(node, move |event, ctx| {
            if matches!(event, Event::Message { .. }) {
                seen.borrow_mut().push((ctx.node(), ctx.now()));
            }
        });
    }
    net.with_ctx(eu1, |ctx| {
        ctx.send(eu2, Bytes::from_static(b"near"));
        ctx.send(us1, Bytes::from_static(b"far"));
    });
    net.run_until_quiescent();
    let seen = seen.borrow();
    let near = seen.iter().find(|(n, _)| *n == eu2).unwrap().1;
    let far = seen.iter().find(|(n, _)| *n == us1).unwrap().1;
    assert_eq!(near, SimTime::from_millis(5), "intra-region preset");
    assert!(
        far >= SimTime::from_millis(80),
        "inter-region preset with jitter, got {far}"
    );
}

#[test]
fn partition_sets_and_heal_all() {
    let mut net = SimNet::new(Topology::lan(), 4);
    let left: Vec<_> = (0..3).map(|_| net.add_node()).collect();
    let right: Vec<_> = (0..3).map(|_| net.add_node()).collect();
    let hits = Rc::new(RefCell::new(0u32));
    for &node in left.iter().chain(&right) {
        let hits = Rc::clone(&hits);
        net.set_handler(node, move |event, _ctx| {
            if matches!(event, Event::Message { .. }) {
                *hits.borrow_mut() += 1;
            }
        });
    }
    net.topology_mut().partition_sets(&left, &right);
    // Cross-side traffic all drops; same-side traffic flows.
    net.with_ctx(left[0], |ctx| {
        ctx.send(right[0], Bytes::from_static(b"x"));
        ctx.send(left[1], Bytes::from_static(b"y"));
    });
    net.run_until_quiescent();
    assert_eq!(*hits.borrow(), 1);
    assert_eq!(net.stats().dropped_partition, 1);

    net.topology_mut().heal_all();
    net.with_ctx(left[0], |ctx| ctx.send(right[0], Bytes::from_static(b"z")));
    net.run_until_quiescent();
    assert_eq!(*hits.borrow(), 2);
}

#[test]
fn timers_and_messages_interleave_deterministically() {
    // Two seeds, identical configuration: identical interleaving traces.
    let trace = |seed: u64| {
        let mut net = SimNet::new(
            Topology::uniform(
                LinkConfig::new(Duration::from_millis(7)).with_jitter(Duration::from_millis(5)),
            ),
            seed,
        );
        let a = net.add_node();
        let b = net.add_node();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log_b = Rc::clone(&log);
        net.set_handler(b, move |event, ctx| match event {
            Event::Message { payload, .. } => {
                log_b
                    .borrow_mut()
                    .push(format!("msg:{:?}@{}", payload, ctx.now()));
                ctx.set_timer(Duration::from_millis(3), TimerToken(1));
            }
            Event::Timer { token } => {
                log_b
                    .borrow_mut()
                    .push(format!("timer:{}@{}", token.0, ctx.now()));
            }
        });
        net.with_ctx(a, |ctx| {
            for i in 0..10u8 {
                ctx.send(b, Bytes::from(vec![i]));
            }
        });
        net.run_until_quiescent();
        let out = log.borrow().clone();
        out
    };
    assert_eq!(trace(11), trace(11), "same seed, same trace");
    assert_ne!(trace(11), trace(12), "different seed, different jitter");
}

#[test]
fn self_messages_are_fast_and_reliable() {
    // Local IPC between co-located proxy and store must survive loss and
    // partitions (it never touches the network).
    let lossy = LinkConfig::new(Duration::from_millis(50)).with_loss(1.0);
    let mut net = SimNet::new(Topology::uniform(lossy), 5);
    let a = net.add_node();
    let got = Rc::new(RefCell::new(None));
    let got2 = Rc::clone(&got);
    net.set_handler(a, move |event, ctx| {
        if let Event::Message { payload, .. } = event {
            *got2.borrow_mut() = Some((payload, ctx.now()));
        }
    });
    net.topology_mut().partition(a, a); // even a self-"partition"
    net.with_ctx(a, |ctx| ctx.send(a, Bytes::from_static(b"local")));
    net.run_until_quiescent();
    let got = got.borrow();
    let (payload, at) = got.as_ref().expect("self-delivery must succeed");
    assert_eq!(&payload[..], b"local");
    assert!(*at < SimTime::from_millis(1), "local IPC is ~1µs, got {at}");
}
