//! Property tests: every encodable value decodes back to itself, and no
//! byte-level truncation or mutation can cause a panic.

use std::collections::BTreeMap;

use globe_wire::{from_bytes, to_bytes, varint};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::put_varint(&mut buf, v);
        prop_assert_eq!(buf.len(), varint::varint_len(v));
        let mut s = buf.as_slice();
        prop_assert_eq!(varint::get_varint(&mut s).unwrap(), v);
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".{0,64}") {
        let v = s.to_string();
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn vec_of_strings_roundtrip(v in proptest::collection::vec(".{0,16}", 0..16)) {
        let v: Vec<String> = v;
        prop_assert_eq!(from_bytes::<Vec<String>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn map_roundtrip(m in proptest::collection::btree_map(any::<u64>(), ".{0,8}", 0..16)) {
        let m: BTreeMap<u64, String> = m;
        prop_assert_eq!(from_bytes::<BTreeMap<u64, String>>(&to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn pair_option_roundtrip(a in any::<u64>(), b in proptest::option::of(".{0,8}")) {
        let v = (a, b);
        prop_assert_eq!(from_bytes::<(u64, Option<String>)>(&to_bytes(&v)).unwrap(), v);
    }

    /// Decoding arbitrary garbage must never panic, only error or succeed.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = from_bytes::<u64>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Vec<u64>>(&bytes);
        let _ = from_bytes::<BTreeMap<u64, String>>(&bytes);
        let _ = from_bytes::<Option<(u64, String)>>(&bytes);
    }

    /// Truncating a valid encoding at any point yields an error, not a panic.
    #[test]
    fn truncation_never_panics(v in proptest::collection::vec(".{0,8}", 0..8), cut in any::<prop::sample::Index>()) {
        let v: Vec<String> = v;
        let bytes = to_bytes(&v);
        if !bytes.is_empty() {
            let cut = cut.index(bytes.len());
            let _ = from_bytes::<Vec<String>>(&bytes[..cut]);
        }
    }
}
