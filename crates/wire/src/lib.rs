//! Binary wire format for Globe.
//!
//! The ICDCS'98 Globe paper requires that replication and communication
//! sub-objects be unaware of an object's semantics: they operate only on
//! *marshalled invocation messages* "in which method identifiers and
//! parameters have been encoded". This crate supplies that marshalling
//! layer: a small, explicit, length-checked binary format used by every
//! protocol message, clock, and invocation in the workspace.
//!
//! Values implement [`WireEncode`] and [`WireDecode`]. The format is not
//! self-describing; both sides must agree on the type, exactly as two
//! replicas of the same distributed object do.
//!
//! # Examples
//!
//! ```
//! use globe_wire::{from_bytes, to_bytes};
//!
//! # fn main() -> Result<(), globe_wire::WireError> {
//! let v: Vec<String> = vec!["index.html".into(), "logo.png".into()];
//! let bytes = to_bytes(&v);
//! let back: Vec<String> = from_bytes(&bytes)?;
//! assert_eq!(v, back);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod varint;

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes};

pub use error::WireError;
pub use varint::{get_varint, put_varint, varint_len, zigzag_decode, zigzag_encode};

/// Sanity limit on decoded length prefixes (strings, vectors, byte blobs).
///
/// Nothing in the framework legitimately ships a single value larger than
/// this; the limit keeps a corrupt or hostile length prefix from causing a
/// multi-gigabyte allocation.
pub const MAX_LEN: u64 = 64 * 1024 * 1024;

/// Types that can be serialized into the Globe wire format.
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Exact number of bytes [`WireEncode::encode`] will append.
    fn encoded_len(&self) -> usize;
}

/// Types that can be deserialized from the Globe wire format.
pub trait WireDecode: Sized {
    /// Reads one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is truncated or malformed.
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError>;
}

/// Encodes `value` into a freshly allocated [`Bytes`].
pub fn to_bytes<T: WireEncode + ?Sized>(value: &T) -> Bytes {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    debug_assert_eq!(buf.len(), value.encoded_len(), "encoded_len mismatch");
    Bytes::from(buf)
}

/// Decodes a complete value from `bytes`, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or if bytes remain after the
/// value has been decoded.
pub fn from_bytes<T: WireDecode>(mut bytes: &[u8]) -> Result<T, WireError> {
    let value = T::decode(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: bytes.len(),
        });
    }
    Ok(value)
}

fn need<B: Buf>(buf: &B, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated {
            needed: n,
            remaining: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Reads a length prefix and validates it against [`MAX_LEN`].
///
/// # Errors
///
/// Returns [`WireError::LengthOverflow`] if the prefix exceeds the limit.
pub fn get_len<B: Buf>(buf: &mut B) -> Result<usize, WireError> {
    let len = get_varint(buf)?;
    if len > MAX_LEN {
        return Err(WireError::LengthOverflow { len, max: MAX_LEN });
    }
    Ok(len as usize)
}

macro_rules! impl_fixed_int {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl WireEncode for $ty {
            fn encode<B: BufMut>(&self, buf: &mut B) {
                buf.$put(*self);
            }
            fn encoded_len(&self) -> usize {
                $size
            }
        }
        impl WireDecode for $ty {
            fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
                need(buf, $size)?;
                Ok(buf.$get())
            }
        }
    };
}

impl_fixed_int!(u8, put_u8, get_u8, 1);
impl_fixed_int!(u16, put_u16, get_u16, 2);
impl_fixed_int!(u32, put_u32, get_u32, 4);

impl WireEncode for u64 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, *self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl WireDecode for u64 {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        get_varint(buf)
    }
}

impl WireEncode for i64 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, zigzag_encode(*self));
    }
    fn encoded_len(&self) -> usize {
        varint_len(zigzag_encode(*self))
    }
}

impl WireDecode for i64 {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(zigzag_decode(get_varint(buf)?))
    }
}

impl WireEncode for usize {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl WireDecode for usize {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow {
            len: v,
            max: usize::MAX as u64,
        })
    }
}

impl WireEncode for bool {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl WireDecode for bool {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                type_name: "bool",
                tag,
            }),
        }
    }
}

impl WireEncode for f64 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64(*self);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireDecode for f64 {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_f64())
    }
}

impl WireEncode for std::time::Duration {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        // Nanoseconds as a varint: identical on the wire to the
        // hand-rolled `as_nanos() as u64` encodings that predate this
        // impl, so adopting it is not a format change. Durations beyond
        // ~584 years saturate.
        put_varint(buf, u64::try_from(self.as_nanos()).unwrap_or(u64::MAX));
    }
    fn encoded_len(&self) -> usize {
        varint_len(u64::try_from(self.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl WireDecode for std::time::Duration {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(std::time::Duration::from_nanos(get_varint(buf)?))
    }
}

impl WireEncode for str {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl WireEncode for String {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.as_str().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl WireDecode for String {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let len = get_len(buf)?;
        need(buf, len)?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        String::from_utf8(raw).map_err(|_| WireError::InvalidUtf8)
    }
}

impl WireEncode for Bytes {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl WireDecode for Bytes {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let len = get_len(buf)?;
        need(buf, len)?;
        Ok(buf.copy_to_bytes(len))
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(WireEncode::encoded_len).sum::<usize>()
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let len = get_len(buf)?;
        // Avoid pre-allocating attacker-controlled capacity: cap the initial
        // reservation, grow organically beyond it.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, WireEncode::encoded_len)
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Option",
                tag,
            }),
        }
    }
}

impl<K: WireEncode, V: WireEncode> WireEncode for BTreeMap<K, V> {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64)
            + self
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum::<usize>()
    }
}

impl<K: WireDecode + Ord, V: WireDecode> WireDecode for BTreeMap<K, V> {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let len = get_len(buf)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: WireEncode, B2: WireEncode> WireEncode for (A, B2) {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: WireDecode, B2: WireDecode> WireDecode for (A, B2) {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B2::decode(buf)?))
    }
}

impl<A: WireEncode, B2: WireEncode, C: WireEncode> WireEncode for (A, B2, C) {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: WireDecode, B2: WireDecode, C: WireDecode> WireDecode for (A, B2, C) {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B2::decode(buf)?, C::decode(buf)?))
    }
}

/// Implements [`WireEncode`]/[`WireDecode`] for a fieldless enum with a
/// one-byte discriminant.
///
/// ```
/// globe_wire::wire_enum! {
///     /// Example direction.
///     pub enum Direction {
///         North = 0,
///         South = 1,
///     }
/// }
/// let b = globe_wire::to_bytes(&Direction::South);
/// let d: Direction = globe_wire::from_bytes(&b).unwrap();
/// assert_eq!(d, Direction::South);
/// ```
#[macro_export]
macro_rules! wire_enum {
    (
        $(#[$meta:meta])*
        pub enum $name:ident {
            $(
                $(#[$vmeta:meta])*
                $variant:ident = $tag:expr
            ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// All variants, in declaration order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];
        }

        impl $crate::WireEncode for $name {
            fn encode<B: bytes::BufMut>(&self, buf: &mut B) {
                let tag: u8 = match self {
                    $( $name::$variant => $tag, )+
                };
                buf.put_u8(tag);
            }
            fn encoded_len(&self) -> usize {
                1
            }
        }

        impl $crate::WireDecode for $name {
            fn decode<B: bytes::Buf>(buf: &mut B) -> Result<Self, $crate::WireError> {
                if !buf.has_remaining() {
                    return Err($crate::WireError::Truncated { needed: 1, remaining: 0 });
                }
                match buf.get_u8() {
                    $( $tag => Ok($name::$variant), )+
                    tag => Err($crate::WireError::InvalidTag {
                        type_name: stringify!($name),
                        tag,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(value: T)
    where
        T: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(&value);
        assert_eq!(bytes.len(), value.encoded_len());
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(513u16);
        roundtrip(70_000u32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f64);
        roundtrip(usize::MAX);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(String::from("hello κόσμε"));
        roundtrip(String::new());
        roundtrip(Bytes::from_static(b"\x00\x01\xff"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((String::from("a"), 9u64));
        let mut map = BTreeMap::new();
        map.insert(String::from("x"), 1u64);
        map.insert(String::from("y"), 2u64);
        roundtrip(map);
    }

    #[test]
    fn nested_container_roundtrip() {
        roundtrip(vec![
            Some(vec![String::from("p"), String::from("q")]),
            None,
            Some(Vec::new()),
        ]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u64).to_vec();
        bytes.push(0);
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let value = (String::from("page"), vec![1u64, 2, 3]);
        let bytes = to_bytes(&value);
        for cut in 0..bytes.len() {
            let res = from_bytes::<(String, Vec<u64>)>(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bogus_bool_and_option_tags() {
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(WireError::InvalidTag { .. })
        ));
        assert!(matches!(
            from_bytes::<Option<u64>>(&[7]),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // length 2, bytes [0xff, 0xff]
        let bytes = [2u8, 0xff, 0xff];
        assert_eq!(from_bytes::<String>(&bytes), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn length_limit_enforced() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, MAX_LEN + 1);
        assert!(matches!(
            from_bytes::<Bytes>(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    wire_enum! {
        /// Test enum.
        pub enum Tri {
            A = 0,
            B = 1,
            C = 7,
        }
    }

    #[test]
    fn wire_enum_roundtrip_and_errors() {
        for v in Tri::ALL {
            roundtrip(*v);
        }
        assert!(matches!(
            from_bytes::<Tri>(&[2]),
            Err(WireError::InvalidTag {
                type_name: "Tri",
                tag: 2
            })
        ));
        assert!(from_bytes::<Tri>(&[]).is_err());
    }
}
