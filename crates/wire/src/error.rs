//! Error type for wire encoding and decoding.

use std::error::Error;
use std::fmt;

/// Error produced when decoding (or, rarely, encoding) wire data fails.
///
/// Every decoder in this crate is total: malformed input yields a
/// `WireError`, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a complete value could be read.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes that were actually remaining.
        remaining: usize,
    },
    /// An enum discriminant (tag byte) did not match any known variant.
    InvalidTag {
        /// Human-readable name of the type being decoded.
        type_name: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// A varint used more than 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// A length prefix exceeded the decoder's sanity limit.
    LengthOverflow {
        /// The declared length.
        len: u64,
        /// The maximum the decoder accepts.
        max: u64,
    },
    /// `from_bytes` finished decoding but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes remaining.
        remaining: usize,
    },
    /// A domain-specific constraint was violated while decoding.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated input: needed {needed} more bytes, only {remaining} remaining"
            ),
            WireError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            WireError::InvalidUtf8 => write!(f, "decoded string is not valid UTF-8"),
            WireError::VarintOverflow => write!(f, "varint does not fit in 64 bits"),
            WireError::LengthOverflow { len, max } => {
                write!(f, "declared length {len} exceeds limit {max}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after complete value")
            }
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            WireError::Truncated {
                needed: 4,
                remaining: 1,
            },
            WireError::InvalidTag {
                type_name: "ObjectModel",
                tag: 9,
            },
            WireError::InvalidUtf8,
            WireError::VarintOverflow,
            WireError::LengthOverflow { len: 10, max: 5 },
            WireError::TrailingBytes { remaining: 3 },
            WireError::Invalid("empty name"),
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(!s.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
