//! LEB128-style variable-length integers and ZigZag signed mapping.
//!
//! Varints keep small values (sequence numbers, lengths, identifiers) to a
//! single byte on the wire, which matters because Globe coherence traffic is
//! dominated by tiny control messages.

use bytes::{Buf, BufMut};

use crate::WireError;

/// Maximum number of bytes a `u64` varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Encodes `value` as an LEB128 varint into `buf`.
pub fn put_varint<B: BufMut>(buf: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes an LEB128 varint from `buf`.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if the buffer ends mid-varint and
/// [`WireError::VarintOverflow`] if the encoding exceeds 64 bits.
pub fn get_varint<B: Buf>(buf: &mut B) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::Truncated {
                needed: 1,
                remaining: 0,
            });
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

/// Number of bytes [`put_varint`] will write for `value`.
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Maps a signed integer onto an unsigned one so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v), "length mismatch for {v}");
        let mut slice = buf.as_slice();
        assert_eq!(get_varint(&mut slice).unwrap(), v);
        assert!(slice.is_empty());
    }

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn single_byte_values() {
        for v in 0..=127u64 {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_input_is_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(matches!(
                get_varint(&mut slice),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn overlong_is_overflow() {
        // Eleven continuation bytes can never be a valid u64.
        let bytes = [0xffu8; 11];
        let mut slice = &bytes[..];
        assert_eq!(get_varint(&mut slice), Err(WireError::VarintOverflow));
    }

    #[test]
    fn tenth_byte_high_bits_rejected() {
        // 10-byte varint whose last byte contributes more than bit 63.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut slice = &bytes[..];
        assert_eq!(get_varint(&mut slice), Err(WireError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456, 123_456] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small encodings.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }
}
