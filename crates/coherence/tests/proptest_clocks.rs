//! Property tests: `VersionVector` forms a join-semilattice, and the
//! comparison/dominance operations behave like a partial order.

use globe_coherence::{ClientId, ClockOrd, VersionVector, WriteId};
use proptest::prelude::*;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    proptest::collection::btree_map(0u32..8, 0u64..16, 0..8).prop_map(|m| {
        m.into_iter()
            .map(|(c, s)| (ClientId::new(c), s))
            .collect::<VersionVector>()
    })
}

proptest! {
    #[test]
    fn merge_is_idempotent(a in arb_vv()) {
        let mut m = a.clone();
        m.merge_max(&a);
        prop_assert_eq!(m, a);
    }

    #[test]
    fn merge_is_commutative(a in arb_vv(), b in arb_vv()) {
        let mut ab = a.clone();
        ab.merge_max(&b);
        let mut ba = b.clone();
        ba.merge_max(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        let mut left = a.clone();
        left.merge_max(&b);
        left.merge_max(&c);
        let mut bc = b.clone();
        bc.merge_max(&c);
        let mut right = a.clone();
        right.merge_max(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_upper_bound(a in arb_vv(), b in arb_vv()) {
        let mut m = a.clone();
        m.merge_max(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    #[test]
    fn compare_is_antisymmetric(a in arb_vv(), b in arb_vv()) {
        match a.compare(&b) {
            ClockOrd::Equal => prop_assert_eq!(&a, &b),
            ClockOrd::Before => prop_assert_eq!(b.compare(&a), ClockOrd::After),
            ClockOrd::After => prop_assert_eq!(b.compare(&a), ClockOrd::Before),
            ClockOrd::Concurrent => prop_assert_eq!(b.compare(&a), ClockOrd::Concurrent),
        }
    }

    #[test]
    fn dominates_is_reflexive_and_transitive(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        prop_assert!(a.dominates(&a));
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    #[test]
    fn missing_from_is_exact(a in arb_vv(), b in arb_vv()) {
        let missing = a.missing_from(&b);
        // Every reported range is genuinely missing and sorted by client.
        for &(client, from, to) in &missing {
            prop_assert_eq!(b.get(client), from);
            prop_assert_eq!(a.get(client), to);
            prop_assert!(to > from);
        }
        // Applying the ranges to b makes it dominate a.
        let mut patched = b.clone();
        for &(client, _, to) in &missing {
            patched.set(client, patched.get(client).max(to));
        }
        prop_assert!(patched.dominates(&a));
    }

    #[test]
    fn record_sequence_reaches_vector(seqs in proptest::collection::vec(0u32..4, 0..32)) {
        // Applying each client's writes 1..=n in order yields exactly n.
        let mut vv = VersionVector::new();
        let mut counts = std::collections::BTreeMap::new();
        for c in seqs {
            let client = ClientId::new(c);
            let n = counts.entry(client).or_insert(0u64);
            *n += 1;
            let wid = WriteId::new(client, *n);
            prop_assert!(vv.is_next(wid));
            vv.record(wid);
            prop_assert!(vv.covers(wid));
        }
        for (client, n) in counts {
            prop_assert_eq!(vv.get(client), n);
        }
    }

    #[test]
    fn wire_roundtrip(a in arb_vv()) {
        let bytes = globe_wire::to_bytes(&a);
        prop_assert_eq!(globe_wire::from_bytes::<VersionVector>(&bytes).unwrap(), a);
    }
}
