//! Litmus tests: classic histories from the DSM and session-guarantee
//! literature, hand-encoded, with the verdict each checker must return.
//! These pin down the *boundaries* between the models — each weaker
//! model accepts a history the next-stronger one rejects.

use globe_coherence::check::{
    check_causal, check_eventual, check_fifo, check_monotonic_reads, check_monotonic_writes,
    check_pram, check_read_your_writes, check_sequential, check_writes_follow_reads,
};
use globe_coherence::{ClientId, History, StoreId, VersionVector, WriteId};
use globe_net::SimTime;

fn c(n: u32) -> ClientId {
    ClientId::new(n)
}
fn s(n: u32) -> StoreId {
    StoreId::new(n)
}
fn w(client: u32, seq: u64) -> WriteId {
    WriteId::new(c(client), seq)
}
fn t(n: u64) -> SimTime {
    SimTime::from_millis(n)
}
fn vv(entries: &[(u32, u64)]) -> VersionVector {
    entries.iter().map(|&(cl, sq)| (c(cl), sq)).collect()
}

/// Writes by two clients interleaved differently at two stores: the
/// canonical history separating PRAM from sequential and causal
/// coherence (Lipton–Sandberg's motivating example).
fn pram_but_not_sequential() -> History {
    let mut h = History::new();
    h.record_write(t(1), c(1), s(0), "x", w(1, 1), VersionVector::new());
    h.record_write(t(1), c(2), s(0), "y", w(2, 1), VersionVector::new());
    // Store 1 sees c1 then c2; store 2 sees c2 then c1.
    h.record_apply(t(2), s(1), w(1, 1), "x");
    h.record_apply(t(3), s(1), w(2, 1), "y");
    h.record_apply(t(2), s(2), w(2, 1), "y");
    h.record_apply(t(3), s(2), w(1, 1), "x");
    h
}

#[test]
fn concurrent_interleaving_separates_pram_from_sequential() {
    let h = pram_but_not_sequential();
    assert!(check_pram(&h).is_ok(), "PRAM permits the interleaving");
    assert!(check_fifo(&h).is_ok());
    assert!(
        check_causal(&h).is_ok(),
        "the writes are concurrent, so causal permits it too"
    );
    assert!(
        check_sequential(&h).is_err(),
        "sequential demands one global order"
    );
}

/// The newsgroup history (Hutto–Ahamad style): a reaction causally after
/// an article, inverted at one store — causal rejects what PRAM accepts.
fn causal_violation_pram_ok() -> History {
    let mut h = History::new();
    // c1 posts the article.
    h.record_write(t(1), c(1), s(0), "forum", w(1, 1), VersionVector::new());
    h.record_apply(t(1), s(0), w(1, 1), "forum");
    // c2 reads it at store 0, then reacts.
    h.record_read(t(2), c(2), s(0), "forum", Some(w(1, 1)), vv(&[(1, 1)]));
    h.record_write(t(3), c(2), s(0), "forum", w(2, 1), vv(&[(1, 1)]));
    h.record_apply(t(3), s(0), w(2, 1), "forum");
    // Store 1 applies reaction before article.
    h.record_apply(t(4), s(1), w(2, 1), "forum");
    h.record_apply(t(5), s(1), w(1, 1), "forum");
    h
}

#[test]
fn reaction_before_article_separates_causal_from_pram() {
    let h = causal_violation_pram_ok();
    assert!(
        check_pram(&h).is_ok(),
        "different clients: PRAM imposes no cross-client order"
    );
    assert!(check_causal(&h).is_err(), "causality inverted at store 1");
}

/// One client's writes applied out of order at a store: rejected by
/// every ordering model, FIFO included.
#[test]
fn per_client_inversion_rejected_by_all_ordering_models() {
    let mut h = History::new();
    h.record_write(t(1), c(1), s(0), "x", w(1, 1), VersionVector::new());
    h.record_write(t(2), c(1), s(0), "x", w(1, 2), vv(&[(1, 1)]));
    h.record_apply(t(3), s(1), w(1, 2), "x");
    h.record_apply(t(4), s(1), w(1, 1), "x");
    assert!(check_pram(&h).is_err());
    assert!(check_fifo(&h).is_err());
    assert!(check_causal(&h).is_err(), "program order is causal order");
    assert!(check_sequential(&h).is_err());
    assert!(check_monotonic_writes(&h, c(1)).is_err());
}

/// A skipped (overwritten) write: FIFO's defining behaviour — legal for
/// FIFO, a gap for PRAM.
#[test]
fn overwrite_skip_separates_fifo_from_pram() {
    let mut h = History::new();
    for seq in 1..=3 {
        h.record_write(t(seq), c(1), s(0), "x", w(1, seq), VersionVector::new());
    }
    h.record_apply(t(4), s(1), w(1, 1), "x");
    h.record_apply(t(5), s(1), w(1, 3), "x"); // write 2 overwritten in transit
    assert!(check_fifo(&h).is_ok());
    assert!(check_pram(&h).is_err());
}

/// Bayou's Read-Your-Writes scenario: write at the server, read from a
/// cache that has not seen it.
#[test]
fn bayou_read_your_writes_litmus() {
    let mut h = History::new();
    h.record_write(t(1), c(1), s(0), "page", w(1, 1), VersionVector::new());
    h.record_apply(t(1), s(0), w(1, 1), "page");
    // Stale cache read: RYW violated for c1, irrelevant for c2.
    h.record_read(t(2), c(1), s(1), "page", None, VersionVector::new());
    assert!(check_read_your_writes(&h, c(1)).is_err());
    assert!(check_read_your_writes(&h, c(2)).is_ok());
    // The same read against a caught-up cache: satisfied.
    let mut h2 = History::new();
    h2.record_write(t(1), c(1), s(0), "page", w(1, 1), VersionVector::new());
    h2.record_apply(t(1), s(0), w(1, 1), "page");
    h2.record_read(t(2), c(1), s(1), "page", Some(w(1, 1)), vv(&[(1, 1)]));
    assert!(check_read_your_writes(&h2, c(1)).is_ok());
}

/// Bayou's Monotonic Reads scenario, exactly as the paper retells it:
/// "if a client first reads the page from S1 and later again from S2,
/// then the second copy should be the same as the one read on S1, or an
/// updated version thereof, but not an earlier version."
#[test]
fn bayou_monotonic_reads_litmus() {
    let mut h = History::new();
    h.record_read(t(1), c(1), s(1), "page", Some(w(9, 5)), vv(&[(9, 5)]));
    h.record_read(t(2), c(1), s(2), "page", Some(w(9, 3)), vv(&[(9, 3)]));
    assert!(check_monotonic_reads(&h, c(1)).is_err(), "went backwards");

    let mut h2 = History::new();
    h2.record_read(t(1), c(1), s(1), "page", Some(w(9, 5)), vv(&[(9, 5)]));
    h2.record_read(t(2), c(1), s(2), "page", Some(w(9, 7)), vv(&[(9, 7)]));
    assert!(
        check_monotonic_reads(&h2, c(1)).is_ok(),
        "updated version ok"
    );
}

/// Bayou's Writes-Follow-Reads: the paper's electronic-newspaper
/// example — "the article and then the reaction must appear in that
/// order on every store to make any sense."
#[test]
fn bayou_writes_follow_reads_litmus() {
    // c2 reads the article then writes a reaction.
    let base = |h: &mut History| {
        h.record_write(t(1), c(1), s(0), "news", w(1, 1), VersionVector::new());
        h.record_apply(t(1), s(0), w(1, 1), "news");
        h.record_read(t(2), c(2), s(0), "news", Some(w(1, 1)), vv(&[(1, 1)]));
        h.record_write(t(3), c(2), s(0), "news", w(2, 1), VersionVector::new());
        h.record_apply(t(3), s(0), w(2, 1), "news");
    };
    // Good store: article then reaction.
    let mut good = History::new();
    base(&mut good);
    good.record_apply(t(4), s(1), w(1, 1), "news");
    good.record_apply(t(5), s(1), w(2, 1), "news");
    assert!(check_writes_follow_reads(&good, c(2)).is_ok());
    // Bad store: reaction first.
    let mut bad = History::new();
    base(&mut bad);
    bad.record_apply(t(4), s(1), w(2, 1), "news");
    assert!(check_writes_follow_reads(&bad, c(2)).is_err());
}

/// Divergent final states: every ordering checker can pass while the
/// eventual checker (the only one comparing state) fails — the models
/// are orthogonal, as §3.2's layering implies.
#[test]
fn ordering_and_convergence_are_orthogonal() {
    let mut h = History::new();
    h.record_write(t(1), c(1), s(0), "x", w(1, 1), VersionVector::new());
    h.record_apply(t(1), s(0), w(1, 1), "x");
    // Store 1 never receives the write — PRAM-legal mid-run…
    h.record_final_digest(s(0), 111);
    h.record_final_digest(s(1), 222);
    assert!(check_pram(&h).is_ok());
    // …but it is not convergence.
    assert!(check_eventual(&h).is_err());
}

/// An empty history satisfies everything (vacuous truth).
#[test]
fn empty_history_satisfies_all_nine_models() {
    let h = History::new();
    assert!(check_sequential(&h).is_ok());
    assert!(check_causal(&h).is_ok());
    assert!(check_pram(&h).is_ok());
    assert!(check_fifo(&h).is_ok());
    assert!(check_eventual(&h).is_ok());
    for client in [c(0), c(1)] {
        assert!(check_read_your_writes(&h, client).is_ok());
        assert!(check_monotonic_reads(&h, client).is_ok());
        assert!(check_monotonic_writes(&h, client).is_ok());
        assert!(check_writes_follow_reads(&h, client).is_ok());
    }
}
