//! Coherence machinery for the Globe Web-object framework.
//!
//! The ICDCS'98 paper distinguishes *object-based* coherence models —
//! what a replicated Web object promises all of its clients (§3.2.1:
//! sequential, PRAM, FIFO, causal, eventual) — from *client-based* models
//! — what one client additionally requires (§3.2.2: the four Bayou
//! session guarantees, which the framework *enforces* rather than merely
//! checks). This crate defines those models, the logical-clock machinery
//! the protocols in `globe-core` use to implement them (write identifiers
//! and per-client version vectors, §4.2), and history checkers that
//! validate recorded executions against every model.
//!
//! # Examples
//!
//! Write identifiers and the store-side `expected_write` table:
//!
//! ```
//! use globe_coherence::{ClientId, VersionVector, WriteId};
//!
//! let master = ClientId::new(0);
//! let mut expected = VersionVector::new();
//! let w1 = WriteId::new(master, 1);
//! let w2 = w1.next();
//! // Out-of-order arrival: w2 must be buffered, not applied.
//! assert!(!expected.is_next(w2));
//! expected.record(w1);
//! assert!(expected.is_next(w2));
//! ```

#![warn(missing_docs)]

pub mod check;
mod history;
mod ids;
mod lamport;
mod model;
mod store;
mod version;

pub use check::{check_object_model, check_session, Violation};
pub use history::{fnv1a, ApplyRecord, ClientOp, History, OpKind, PageKey};
pub use ids::{ClientId, Dependency, StoreId, WriteId};
pub use lamport::{LamportClock, LamportStamp};
pub use model::{ClientModel, ModelCombination, ObjectModel};
pub use store::StoreClass;
pub use version::{ClockOrd, VersionVector};
