//! The paper's three-layer store model (§3.1, Fig. 2).

use std::fmt;

use globe_wire::wire_enum;

wire_enum! {
    /// The class of a store holding a replica of a Web object.
    ///
    /// "Stores are organized in a layered fashion … permanent stores are
    /// responsible for implementing an object's coherence model;
    /// object-initiated and client-initiated stores may offer weaker
    /// coherence, but perhaps offering the benefit of higher performance"
    /// (§3.1).
    pub enum StoreClass {
        /// Implements persistence; exists independent of any client. "A
        /// Web server is an example of a permanent store."
        Permanent = 0,
        /// Installed by the object's own global replication policy. "A
        /// typical example … is a mirrored Web site."
        ObjectInitiated = 1,
        /// Installed by clients, independent of the object's policy. "A
        /// site-wide cache at a Web proxy is an example."
        ClientInitiated = 2,
    }
}

impl StoreClass {
    /// Layer depth in Fig. 2: permanent stores are layer 0, mirrors layer
    /// 1, caches layer 2.
    pub fn layer(self) -> u8 {
        match self {
            StoreClass::Permanent => 0,
            StoreClass::ObjectInitiated => 1,
            StoreClass::ClientInitiated => 2,
        }
    }

    /// Whether this store class is managed by servers (the object side of
    /// the Fig. 2 divide) rather than by clients.
    pub fn is_server_managed(self) -> bool {
        !matches!(self, StoreClass::ClientInitiated)
    }
}

impl fmt::Display for StoreClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StoreClass::Permanent => "permanent",
            StoreClass::ObjectInitiated => "object-initiated",
            StoreClass::ClientInitiated => "client-initiated",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_ordered_top_down() {
        assert!(StoreClass::Permanent.layer() < StoreClass::ObjectInitiated.layer());
        assert!(StoreClass::ObjectInitiated.layer() < StoreClass::ClientInitiated.layer());
    }

    #[test]
    fn server_managed_divide_matches_figure_2() {
        assert!(StoreClass::Permanent.is_server_managed());
        assert!(StoreClass::ObjectInitiated.is_server_managed());
        assert!(!StoreClass::ClientInitiated.is_server_managed());
    }

    #[test]
    fn wire_roundtrip() {
        for &class in StoreClass::ALL {
            let b = globe_wire::to_bytes(&class);
            assert_eq!(globe_wire::from_bytes::<StoreClass>(&b).unwrap(), class);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(StoreClass::Permanent.to_string(), "permanent");
        assert_eq!(StoreClass::ObjectInitiated.to_string(), "object-initiated");
        assert_eq!(StoreClass::ClientInitiated.to_string(), "client-initiated");
    }
}
