//! Lamport logical clocks.
//!
//! The ordering protocols in this reproduction use write identifiers and
//! version vectors, but a scalar Lamport clock is still useful where a
//! total order with causal compatibility is enough — e.g. deterministic
//! tie-breaking between concurrent policy updates, or timestamping
//! diagnostic events consistently across address spaces.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// A scalar logical timestamp: `(counter, node)` pairs, totally ordered
/// with the node id breaking ties.
///
/// # Examples
///
/// ```
/// use globe_coherence::LamportClock;
///
/// let mut a = LamportClock::new(1);
/// let mut b = LamportClock::new(2);
/// let stamp = a.tick();              // a's local event
/// b.witness(stamp);                  // b receives a's message
/// assert!(b.tick() > stamp, "b's next event is after a's send");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LamportClock {
    counter: u64,
    node: u32,
}

/// One timestamp drawn from a [`LamportClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LamportStamp {
    /// The logical counter value.
    pub counter: u64,
    /// The stamping node (total-order tie-break).
    pub node: u32,
}

impl LamportClock {
    /// A fresh clock owned by `node`.
    pub const fn new(node: u32) -> Self {
        LamportClock { counter: 0, node }
    }

    /// Advances for a local event and returns its timestamp.
    pub fn tick(&mut self) -> LamportStamp {
        self.counter += 1;
        LamportStamp {
            counter: self.counter,
            node: self.node,
        }
    }

    /// Incorporates a received timestamp (the Lamport merge rule): the
    /// local counter jumps past anything it has seen.
    pub fn witness(&mut self, stamp: LamportStamp) {
        self.counter = self.counter.max(stamp.counter);
    }

    /// The current counter value (without advancing).
    pub fn current(&self) -> u64 {
        self.counter
    }
}

impl fmt::Display for LamportStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@n{}", self.counter, self.node)
    }
}

impl WireEncode for LamportStamp {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.counter.encode(buf);
        buf.put_u32(self.node);
    }
    fn encoded_len(&self) -> usize {
        self.counter.encoded_len() + 4
    }
}

impl WireDecode for LamportStamp {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(LamportStamp {
            counter: u64::decode(buf)?,
            node: u32::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut clock = LamportClock::new(0);
        let a = clock.tick();
        let b = clock.tick();
        assert!(b > a);
        assert_eq!(clock.current(), 2);
    }

    #[test]
    fn witness_implements_happened_before() {
        let mut sender = LamportClock::new(1);
        let mut receiver = LamportClock::new(2);
        for _ in 0..10 {
            sender.tick();
        }
        let send = sender.tick(); // counter 11
        receiver.witness(send);
        let receive = receiver.tick();
        assert!(
            receive > send,
            "receive event must be ordered after the send"
        );
    }

    #[test]
    fn ties_break_by_node_id() {
        let mut a = LamportClock::new(1);
        let mut b = LamportClock::new(2);
        let sa = a.tick();
        let sb = b.tick();
        assert_eq!(sa.counter, sb.counter);
        assert!(sa < sb, "equal counters: lower node id first");
    }

    #[test]
    fn witness_never_regresses() {
        let mut clock = LamportClock::new(0);
        clock.tick();
        clock.tick();
        clock.witness(LamportStamp {
            counter: 1,
            node: 9,
        });
        assert_eq!(clock.current(), 2);
    }

    #[test]
    fn wire_roundtrip() {
        let stamp = LamportStamp {
            counter: 123456,
            node: 7,
        };
        let bytes = globe_wire::to_bytes(&stamp);
        assert_eq!(
            globe_wire::from_bytes::<LamportStamp>(&bytes).unwrap(),
            stamp
        );
    }
}
