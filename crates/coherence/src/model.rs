//! The paper's coherence-model taxonomy (§3.2).
//!
//! Object-based models express what the *object* promises all of its
//! clients; client-based models express what a *single client* additionally
//! requires. The two combine: "if the object offers sequential consistency,
//! then it automatically offers every client-based model as well. On the
//! other hand, if only PRAM consistency is offered, a client may decide to
//! impose the Monotonic Reads model as well" (§3.2.2).

use std::fmt;

use globe_wire::wire_enum;

wire_enum! {
    /// Coherence offered by a Web object to all of its clients (§3.2.1).
    pub enum ObjectModel {
        /// Lamport's sequential consistency: one global ordering of
        /// operations, consistent with each client's program order. "Hard
        /// to implement efficiently" but needed by, e.g., shared
        /// white-boards.
        Sequential = 0,
        /// Lipton–Sandberg PRAM: writes by one client are applied at every
        /// store in issue order; no cross-client ordering. Implemented by
        /// tagging writes with WiDs and buffering gaps (§4.2).
        Pram = 1,
        /// The paper's FIFO optimization of PRAM for overwriting updates:
        /// "a write request from a client is honored if it is more recent
        /// than the latest write from that same client. Otherwise, the
        /// request is simply ignored."
        Fifo = 2,
        /// Causal coherence: causally-related operations are ordered at
        /// every store; concurrent ones need not be (Web-forum example).
        Causal = 3,
        /// Eventual coherence: updates are eventually propagated, with no
        /// ordering constraints — the weakest model.
        Eventual = 4,
    }
}

wire_enum! {
    /// Coherence required by a single client (§3.2.2, after Bayou's
    /// session guarantees — enforced here, not merely checked).
    pub enum ClientModel {
        /// The client-PRAM model — Bayou's *Monotonic Writes*: this
        /// client's writes appear at every store in issue order.
        MonotonicWrites = 0,
        /// The client-causal model — Bayou's *Writes Follow Reads*: writes
        /// issued after a read are ordered after the writes that read
        /// depended on, at every store (newspaper-reaction example).
        WritesFollowReads = 1,
        /// Bayou's *Read Your Writes*: every read by this client reflects
        /// all of the client's earlier writes (the Web master's model).
        ReadYourWrites = 2,
        /// Bayou's *Monotonic Reads*: successive reads, possibly at
        /// different stores, never move backwards in time.
        MonotonicReads = 3,
    }
}

impl ObjectModel {
    /// A comparative strength rank: lower is stronger. Only meaningful
    /// within the chain Sequential < Causal < PRAM ≈ FIFO < Eventual.
    pub fn strength_rank(self) -> u8 {
        match self {
            ObjectModel::Sequential => 0,
            ObjectModel::Causal => 1,
            ObjectModel::Pram => 2,
            ObjectModel::Fifo => 2,
            ObjectModel::Eventual => 3,
        }
    }

    /// Whether this object-based model already guarantees the given
    /// client-based model, making a session guard redundant (§3.2.2).
    ///
    /// The reasoning is store-based, matching the paper: ordering models
    /// constrain the *order* in which stores apply writes, not how quickly
    /// writes propagate. Hence PRAM/causal do not subsume Read-Your-Writes
    /// or Monotonic Reads — a client may bind to a store that simply has
    /// not received its write yet, which is exactly why the paper's Web
    /// master adds RYW on top of PRAM.
    pub fn subsumes(self, client: ClientModel) -> bool {
        use ClientModel::*;
        use ObjectModel::*;
        match self {
            Sequential => true,
            Causal => matches!(client, MonotonicWrites | WritesFollowReads),
            Pram | Fifo => matches!(client, MonotonicWrites),
            Eventual => false,
        }
    }

    /// Human-readable name as used in the paper.
    pub fn paper_name(self) -> &'static str {
        match self {
            ObjectModel::Sequential => "sequential",
            ObjectModel::Pram => "PRAM",
            ObjectModel::Fifo => "FIFO",
            ObjectModel::Causal => "causal",
            ObjectModel::Eventual => "eventual",
        }
    }
}

impl ClientModel {
    /// The paper's name for the model.
    pub fn paper_name(self) -> &'static str {
        match self {
            ClientModel::MonotonicWrites => "client-PRAM",
            ClientModel::WritesFollowReads => "client-causal",
            ClientModel::ReadYourWrites => "read your writes",
            ClientModel::MonotonicReads => "monotonic reads",
        }
    }

    /// The equivalent Bayou session guarantee's name (§3.2.2).
    pub fn bayou_name(self) -> &'static str {
        match self {
            ClientModel::MonotonicWrites => "Monotonic Writes",
            ClientModel::WritesFollowReads => "Writes Follow Reads",
            ClientModel::ReadYourWrites => "Read Your Writes",
            ClientModel::MonotonicReads => "Monotonic Reads",
        }
    }
}

impl fmt::Display for ObjectModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

impl fmt::Display for ClientModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A combination of an object-based model with the client-based models a
/// particular client requests on top.
///
/// # Examples
///
/// The paper's conference page: PRAM for the object, Read-Your-Writes for
/// the Web master.
///
/// ```
/// use globe_coherence::{ClientModel, ModelCombination, ObjectModel};
///
/// let combo = ModelCombination::new(ObjectModel::Pram)
///     .with_client(ClientModel::ReadYourWrites);
/// assert!(combo.effective_client_models().contains(&ClientModel::ReadYourWrites));
/// // Monotonic Writes would be redundant under PRAM:
/// let combo = combo.with_client(ClientModel::MonotonicWrites);
/// assert!(combo.redundant_client_models().contains(&ClientModel::MonotonicWrites));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCombination {
    object: ObjectModel,
    clients: Vec<ClientModel>,
}

impl ModelCombination {
    /// Starts from an object-based model with no client additions.
    pub fn new(object: ObjectModel) -> Self {
        ModelCombination {
            object,
            clients: Vec::new(),
        }
    }

    /// Adds a client-based requirement (idempotent).
    pub fn with_client(mut self, model: ClientModel) -> Self {
        if !self.clients.contains(&model) {
            self.clients.push(model);
        }
        self
    }

    /// The object-based model.
    pub fn object(&self) -> ObjectModel {
        self.object
    }

    /// Requested client models that the object model does not already
    /// provide — the ones a session guard must actually enforce.
    pub fn effective_client_models(&self) -> Vec<ClientModel> {
        self.clients
            .iter()
            .copied()
            .filter(|&m| !self.object.subsumes(m))
            .collect()
    }

    /// Requested client models that are redundant under the object model.
    pub fn redundant_client_models(&self) -> Vec<ClientModel> {
        self.clients
            .iter()
            .copied()
            .filter(|&m| self.object.subsumes(m))
            .collect()
    }
}

impl fmt::Display for ModelCombination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.object)?;
        for m in &self.clients {
            write!(f, " + {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_subsumes_everything() {
        for &m in ClientModel::ALL {
            assert!(ObjectModel::Sequential.subsumes(m));
        }
    }

    #[test]
    fn pram_subsumes_only_monotonic_writes() {
        assert!(ObjectModel::Pram.subsumes(ClientModel::MonotonicWrites));
        assert!(!ObjectModel::Pram.subsumes(ClientModel::ReadYourWrites));
        assert!(!ObjectModel::Pram.subsumes(ClientModel::MonotonicReads));
        assert!(!ObjectModel::Pram.subsumes(ClientModel::WritesFollowReads));
    }

    #[test]
    fn causal_subsumes_write_orderings_only() {
        assert!(ObjectModel::Causal.subsumes(ClientModel::MonotonicWrites));
        assert!(ObjectModel::Causal.subsumes(ClientModel::WritesFollowReads));
        assert!(!ObjectModel::Causal.subsumes(ClientModel::ReadYourWrites));
        assert!(!ObjectModel::Causal.subsumes(ClientModel::MonotonicReads));
    }

    #[test]
    fn eventual_subsumes_nothing() {
        for &m in ClientModel::ALL {
            assert!(!ObjectModel::Eventual.subsumes(m));
        }
    }

    #[test]
    fn strength_ranks_are_ordered() {
        assert!(ObjectModel::Sequential.strength_rank() < ObjectModel::Causal.strength_rank());
        assert!(ObjectModel::Causal.strength_rank() < ObjectModel::Pram.strength_rank());
        assert!(ObjectModel::Pram.strength_rank() < ObjectModel::Eventual.strength_rank());
    }

    #[test]
    fn combination_partitions_requests() {
        let combo = ModelCombination::new(ObjectModel::Pram)
            .with_client(ClientModel::ReadYourWrites)
            .with_client(ClientModel::MonotonicWrites)
            .with_client(ClientModel::ReadYourWrites); // duplicate ignored
        assert_eq!(
            combo.effective_client_models(),
            vec![ClientModel::ReadYourWrites]
        );
        assert_eq!(
            combo.redundant_client_models(),
            vec![ClientModel::MonotonicWrites]
        );
        assert_eq!(combo.to_string(), "PRAM + read your writes + client-PRAM");
    }

    #[test]
    fn wire_roundtrips() {
        for &m in ObjectModel::ALL {
            let b = globe_wire::to_bytes(&m);
            assert_eq!(globe_wire::from_bytes::<ObjectModel>(&b).unwrap(), m);
        }
        for &m in ClientModel::ALL {
            let b = globe_wire::to_bytes(&m);
            assert_eq!(globe_wire::from_bytes::<ClientModel>(&b).unwrap(), m);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ObjectModel::Pram.paper_name(), "PRAM");
        assert_eq!(ClientModel::MonotonicWrites.paper_name(), "client-PRAM");
        assert_eq!(
            ClientModel::WritesFollowReads.bayou_name(),
            "Writes Follow Reads"
        );
    }
}
