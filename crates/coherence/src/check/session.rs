//! Checkers for the client-based models of §3.2.2 (Bayou session
//! guarantees).

use std::collections::HashMap;

use crate::{ClientId, ClientModel, History, OpKind, StoreId, VersionVector, Violation, WriteId};

/// Checks Read-Your-Writes for `client`: at every read, the serving
/// store's applied vector covers all of the client's earlier writes.
///
/// # Errors
///
/// Returns [`Violation::Session`] with `model = ReadYourWrites`.
pub fn check_read_your_writes(history: &History, client: ClientId) -> Result<(), Violation> {
    let mut own_writes: u64 = 0;
    for op in history.client_ops(client) {
        match &op.kind {
            OpKind::Write { wid, .. } => own_writes = own_writes.max(wid.seq),
            OpKind::Read { store_version, .. } => {
                let applied = store_version.get(client);
                if applied < own_writes {
                    return Err(Violation::Session {
                        model: ClientModel::ReadYourWrites,
                        client,
                        detail: format!(
                            "read at {} saw only {applied} of the client's {own_writes} writes",
                            op.store
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks Monotonic Reads for `client`: the version observed by each read
/// dominates the union of versions observed by all earlier reads.
///
/// # Errors
///
/// Returns [`Violation::Session`] with `model = MonotonicReads`.
pub fn check_monotonic_reads(history: &History, client: ClientId) -> Result<(), Violation> {
    let mut read_set = VersionVector::new();
    for op in history.client_ops(client) {
        if let OpKind::Read { store_version, .. } = &op.kind {
            if !store_version.dominates(&read_set) {
                return Err(Violation::Session {
                    model: ClientModel::MonotonicReads,
                    client,
                    detail: format!(
                        "read at {} observed {store_version} which does not cover prior read set {read_set}",
                        op.store
                    ),
                });
            }
            read_set.merge_max(store_version);
        }
    }
    Ok(())
}

/// Checks Monotonic Writes (client-PRAM) for `client`: every store applies
/// this client's writes in issue order (inversions forbidden; gaps allowed
/// mid-run, since later writes may still be in flight).
///
/// # Errors
///
/// Returns [`Violation::Session`] with `model = MonotonicWrites`.
pub fn check_monotonic_writes(history: &History, client: ClientId) -> Result<(), Violation> {
    let mut last_at_store: HashMap<StoreId, u64> = HashMap::new();
    for apply in history.applies().iter().filter(|a| a.wid.client == client) {
        let last = last_at_store.entry(apply.store).or_insert(0);
        if apply.wid.seq <= *last {
            return Err(Violation::Session {
                model: ClientModel::MonotonicWrites,
                client,
                detail: format!(
                    "store {} applied write #{} after #{}",
                    apply.store, apply.wid.seq, last
                ),
            });
        }
        *last = apply.wid.seq;
    }
    Ok(())
}

/// Checks Writes-Follow-Reads (client-causal) for `client`: whenever the
/// client wrote after reading, every store that applies the write has
/// already applied everything the read depended on ("the article and then
/// the reaction must appear in that order on every store").
///
/// # Errors
///
/// Returns [`Violation::Session`] with `model = WritesFollowReads`.
pub fn check_writes_follow_reads(history: &History, client: ClientId) -> Result<(), Violation> {
    // Dependency vector each of the client's writes must follow.
    let mut read_set = VersionVector::new();
    let mut write_deps: HashMap<WriteId, VersionVector> = HashMap::new();
    for op in history.client_ops(client) {
        match &op.kind {
            OpKind::Read { store_version, .. } => read_set.merge_max(store_version),
            OpKind::Write { wid, .. } => {
                write_deps.insert(*wid, read_set.clone());
            }
        }
    }
    if write_deps.is_empty() {
        return Ok(());
    }
    for store in history.stores() {
        let mut applied = VersionVector::new();
        for apply in history.store_applies(store) {
            if let Some(deps) = write_deps.get(&apply.wid) {
                if !applied.dominates(deps) {
                    return Err(Violation::Session {
                        model: ClientModel::WritesFollowReads,
                        client,
                        detail: format!(
                            "store {store} applied {} before its read dependencies {deps} (had {applied})",
                            apply.wid
                        ),
                    });
                }
            }
            applied.advance_to(apply.wid);
        }
    }
    Ok(())
}

/// Checks one session guarantee for one client.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_session(
    history: &History,
    client: ClientId,
    model: ClientModel,
) -> Result<(), Violation> {
    match model {
        ClientModel::ReadYourWrites => check_read_your_writes(history, client),
        ClientModel::MonotonicReads => check_monotonic_reads(history, client),
        ClientModel::MonotonicWrites => check_monotonic_writes(history, client),
        ClientModel::WritesFollowReads => check_writes_follow_reads(history, client),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::SimTime;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn s(n: u32) -> StoreId {
        StoreId::new(n)
    }
    fn w(client: u32, seq: u64) -> WriteId {
        WriteId::new(c(client), seq)
    }
    fn t(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }
    fn vv(entries: &[(u32, u64)]) -> VersionVector {
        entries.iter().map(|&(cl, sq)| (c(cl), sq)).collect()
    }

    #[test]
    fn ryw_passes_when_store_caught_up() {
        let mut h = History::new();
        h.record_write(t(1), c(1), s(0), "p", w(1, 1), VersionVector::new());
        h.record_read(t(2), c(1), s(1), "p", Some(w(1, 1)), vv(&[(1, 1)]));
        assert!(check_read_your_writes(&h, c(1)).is_ok());
    }

    #[test]
    fn ryw_fails_when_store_lags() {
        // The paper's motivating case: the Web master writes to the
        // server, then reads from a cache that has not received the push.
        let mut h = History::new();
        h.record_write(t(1), c(1), s(0), "p", w(1, 1), VersionVector::new());
        h.record_read(t(2), c(1), s(1), "p", None, VersionVector::new());
        let err = check_read_your_writes(&h, c(1)).unwrap_err();
        assert!(matches!(
            err,
            Violation::Session {
                model: ClientModel::ReadYourWrites,
                ..
            }
        ));
    }

    #[test]
    fn ryw_ignores_other_clients() {
        let mut h = History::new();
        h.record_write(t(1), c(2), s(0), "p", w(2, 1), VersionVector::new());
        h.record_read(t(2), c(1), s(1), "p", None, VersionVector::new());
        assert!(check_read_your_writes(&h, c(1)).is_ok());
    }

    #[test]
    fn monotonic_reads_rejects_backwards_store_switch() {
        // Read a fresh store S1, then a stale store S2: the second copy is
        // "an earlier version", exactly the paper's S1/S2 example.
        let mut h = History::new();
        h.record_read(t(1), c(1), s(1), "p", Some(w(2, 3)), vv(&[(2, 3)]));
        h.record_read(t(2), c(1), s(2), "p", Some(w(2, 1)), vv(&[(2, 1)]));
        let err = check_monotonic_reads(&h, c(1)).unwrap_err();
        assert!(matches!(
            err,
            Violation::Session {
                model: ClientModel::MonotonicReads,
                ..
            }
        ));
    }

    #[test]
    fn monotonic_reads_accepts_same_or_newer() {
        let mut h = History::new();
        h.record_read(t(1), c(1), s(1), "p", Some(w(2, 1)), vv(&[(2, 1)]));
        h.record_read(t(2), c(1), s(2), "p", Some(w(2, 1)), vv(&[(2, 1)]));
        h.record_read(t(3), c(1), s(1), "p", Some(w(2, 4)), vv(&[(2, 4)]));
        assert!(check_monotonic_reads(&h, c(1)).is_ok());
    }

    #[test]
    fn monotonic_writes_rejects_inversion_at_any_store() {
        let mut h = History::new();
        h.record_write(t(1), c(1), s(0), "p", w(1, 1), VersionVector::new());
        h.record_write(t(2), c(1), s(0), "p", w(1, 2), VersionVector::new());
        h.record_apply(t(3), s(5), w(1, 2), "p");
        h.record_apply(t(4), s(5), w(1, 1), "p");
        assert!(check_monotonic_writes(&h, c(1)).is_err());
        // A different client is unaffected.
        assert!(check_monotonic_writes(&h, c(2)).is_ok());
    }

    #[test]
    fn monotonic_writes_allows_gaps_in_flight() {
        let mut h = History::new();
        h.record_write(t(1), c(1), s(0), "p", w(1, 1), VersionVector::new());
        h.record_write(t(2), c(1), s(0), "p", w(1, 2), VersionVector::new());
        h.record_write(t(3), c(1), s(0), "p", w(1, 3), VersionVector::new());
        h.record_apply(t(4), s(5), w(1, 1), "p");
        h.record_apply(t(5), s(5), w(1, 3), "p"); // 2 still in flight
        assert!(check_monotonic_writes(&h, c(1)).is_ok());
    }

    #[test]
    fn wfr_rejects_reaction_without_article() {
        // Client 2 reads the article (write of client 1), reacts; a store
        // applies the reaction while never having the article.
        let mut h = History::new();
        h.record_read(t(1), c(2), s(0), "p", Some(w(1, 1)), vv(&[(1, 1)]));
        h.record_write(t(2), c(2), s(0), "p", w(2, 1), VersionVector::new());
        h.record_apply(t(3), s(1), w(2, 1), "p"); // reaction without article
        let err = check_writes_follow_reads(&h, c(2)).unwrap_err();
        assert!(matches!(
            err,
            Violation::Session {
                model: ClientModel::WritesFollowReads,
                ..
            }
        ));
    }

    #[test]
    fn wfr_accepts_article_then_reaction() {
        let mut h = History::new();
        h.record_read(t(1), c(2), s(0), "p", Some(w(1, 1)), vv(&[(1, 1)]));
        h.record_write(t(2), c(2), s(0), "p", w(2, 1), VersionVector::new());
        h.record_apply(t(3), s(1), w(1, 1), "p");
        h.record_apply(t(4), s(1), w(2, 1), "p");
        assert!(check_writes_follow_reads(&h, c(2)).is_ok());
    }

    #[test]
    fn wfr_without_reads_is_trivially_satisfied() {
        let mut h = History::new();
        h.record_write(t(1), c(1), s(0), "p", w(1, 1), VersionVector::new());
        h.record_apply(t(2), s(1), w(1, 1), "p");
        assert!(check_writes_follow_reads(&h, c(1)).is_ok());
    }

    #[test]
    fn dispatcher_covers_all_models() {
        let h = History::new();
        for &m in ClientModel::ALL {
            assert!(check_session(&h, c(1), m).is_ok());
        }
    }
}
