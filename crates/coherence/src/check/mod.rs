//! Execution-history checkers for every coherence model in the paper.
//!
//! Each checker takes a recorded [`History`](crate::History) and returns
//! `Ok(())` or the first [`Violation`] found. They are *store-based*, like
//! the paper's model definitions: ordering models constrain the order in
//! which stores apply writes; session models constrain what individual
//! clients observe.
//!
//! The sequential checker is sound but not complete: it validates the
//! prefix-equal total order that sequencer-based implementations produce
//! and may reject exotic-but-legal executions. That is the right trade
//! for a protocol validator.

mod object;
mod session;

use std::fmt;

pub use object::{
    check_causal, check_eventual, check_fifo, check_pram, check_read_integrity,
    check_read_integrity_lww, check_sequential,
};
pub use session::{
    check_monotonic_reads, check_monotonic_writes, check_read_your_writes, check_session,
    check_writes_follow_reads,
};

use crate::{ClientId, ClientModel, ObjectModel, PageKey, StoreId, WriteId};

/// A coherence violation, with enough context to debug the protocol that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A store applied two writes of one client out of issue order.
    PramInversion {
        /// The offending store.
        store: StoreId,
        /// The writing client.
        client: ClientId,
        /// Sequence number applied first.
        earlier_applied: u64,
        /// Smaller sequence number applied later.
        later_applied: u64,
    },
    /// A store skipped a write of a client under a gap-free model.
    PramGap {
        /// The offending store.
        store: StoreId,
        /// The writing client.
        client: ClientId,
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number actually applied.
        got: u64,
    },
    /// A store applied causally-related writes in the wrong order.
    CausalInversion {
        /// The offending store.
        store: StoreId,
        /// The write that should have come first.
        cause: WriteId,
        /// The dependent write that was applied first.
        effect: WriteId,
    },
    /// A store applied a write whose causal dependency it never applied.
    CausalMissingDependency {
        /// The offending store.
        store: StoreId,
        /// The missing dependency.
        cause: WriteId,
        /// The write applied without it.
        effect: WriteId,
    },
    /// Two stores' apply sequences are not prefixes of a common total
    /// order (sequential coherence requires one global ordering).
    SequentialDivergence {
        /// First store.
        store_a: StoreId,
        /// Second store.
        store_b: StoreId,
        /// Position at which the sequences disagree.
        position: usize,
    },
    /// The global order does not respect some client's program order.
    SequentialProgramOrder {
        /// The writing client.
        client: ClientId,
        /// Sequence number applied first.
        earlier_applied: u64,
        /// Smaller sequence number applied later.
        later_applied: u64,
    },
    /// A read did not return the latest locally-applied write.
    StaleLocalRead {
        /// The store serving the read.
        store: StoreId,
        /// The reading client.
        client: ClientId,
        /// The page read.
        page: PageKey,
        /// What the read should have seen.
        expected: Option<WriteId>,
        /// What it actually saw.
        got: Option<WriteId>,
    },
    /// Stores did not converge to identical final states.
    Divergence {
        /// First store.
        store_a: StoreId,
        /// Its digest.
        digest_a: u64,
        /// Second store.
        store_b: StoreId,
        /// Its digest.
        digest_b: u64,
    },
    /// A session guarantee was violated for a client.
    Session {
        /// Which guarantee.
        model: ClientModel,
        /// The affected client.
        client: ClientId,
        /// Human-readable details.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PramInversion {
                store,
                client,
                earlier_applied,
                later_applied,
            } => write!(
                f,
                "pram inversion at {store}: applied {client}'s write #{earlier_applied} before #{later_applied}"
            ),
            Violation::PramGap {
                store,
                client,
                expected,
                got,
            } => write!(
                f,
                "pram gap at {store}: expected {client}'s write #{expected}, applied #{got}"
            ),
            Violation::CausalInversion {
                store,
                cause,
                effect,
            } => write!(
                f,
                "causal inversion at {store}: {effect} applied before its cause {cause}"
            ),
            Violation::CausalMissingDependency {
                store,
                cause,
                effect,
            } => write!(
                f,
                "causal dependency missing at {store}: {effect} applied but {cause} never was"
            ),
            Violation::SequentialDivergence {
                store_a,
                store_b,
                position,
            } => write!(
                f,
                "sequential divergence: {store_a} and {store_b} disagree at apply position {position}"
            ),
            Violation::SequentialProgramOrder {
                client,
                earlier_applied,
                later_applied,
            } => write!(
                f,
                "global order breaks {client}'s program order: #{earlier_applied} before #{later_applied}"
            ),
            Violation::StaleLocalRead {
                store,
                client,
                page,
                expected,
                got,
            } => write!(
                f,
                "stale read at {store} by {client} on '{page}': expected {expected:?}, got {got:?}"
            ),
            Violation::Divergence {
                store_a,
                digest_a,
                store_b,
                digest_b,
            } => write!(
                f,
                "final states diverge: {store_a}={digest_a:#018x} vs {store_b}={digest_b:#018x}"
            ),
            Violation::Session {
                model,
                client,
                detail,
            } => write!(f, "{} violated for {client}: {detail}", model.paper_name()),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks a history against an object-based model.
///
/// # Errors
///
/// Returns the first [`Violation`] of the model found in the history.
pub fn check_object_model(history: &crate::History, model: ObjectModel) -> Result<(), Violation> {
    match model {
        ObjectModel::Sequential => check_sequential(history),
        ObjectModel::Pram => check_pram(history),
        ObjectModel::Fifo => check_fifo(history),
        ObjectModel::Causal => check_causal(history),
        ObjectModel::Eventual => check_eventual(history),
    }
}
