//! Identities used by the coherence machinery.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// Identifies one client session.
///
/// In the paper's terms a client is a process that performs read and write
/// operations on a Web object (the Web master and each user are clients);
/// PRAM write identifiers and all session guarantees are scoped by client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its raw index.
    pub const fn new(raw: u32) -> Self {
        ClientId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl WireEncode for ClientId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.0);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireDecode for ClientId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(ClientId(u32::decode(buf)?))
    }
}

/// Identifies one store (one replica holder of an object's state).
///
/// Permanent stores, object-initiated stores (mirrors), and
/// client-initiated stores (caches) all carry `StoreId`s; the class lives
/// in `globe-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreId(u32);

impl StoreId {
    /// Creates a store id from its raw index.
    pub const fn new(raw: u32) -> Self {
        StoreId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl WireEncode for StoreId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.0);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireDecode for StoreId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(StoreId(u32::decode(buf)?))
    }
}

/// The paper's *WiD*: a write identifier composed of the issuing client
/// and a per-client sequence number (`WiD = ⟨client id, sequence number⟩`,
/// §4.2). Sequence numbers start at 1; `seq = 0` never names a real write.
///
/// # Examples
///
/// ```
/// use globe_coherence::{ClientId, WriteId};
///
/// let w1 = WriteId::new(ClientId::new(3), 1);
/// let w2 = w1.next();
/// assert!(w1 < w2);
/// assert_eq!(w2.to_string(), "w(c3,2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId {
    /// The issuing client.
    pub client: ClientId,
    /// Position in that client's write sequence, starting at 1.
    pub seq: u64,
}

impl WriteId {
    /// Creates a write id.
    pub const fn new(client: ClientId, seq: u64) -> Self {
        WriteId { client, seq }
    }

    /// The next write id in this client's sequence.
    pub const fn next(self) -> Self {
        WriteId {
            client: self.client,
            seq: self.seq + 1,
        }
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w({},{})", self.client, self.seq)
    }
}

impl WireEncode for WriteId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.client.encode(buf);
        self.seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.seq.encoded_len()
    }
}

impl WireDecode for WriteId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(WriteId {
            client: ClientId::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

/// The paper's RYW dependency record: "the identifier of the last
/// performed write and the identifier of the store on which it has been
/// performed" (§4.2), transmitted with read requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependency {
    /// The write the issuing client most recently performed.
    pub wid: WriteId,
    /// The store that accepted that write.
    pub store: StoreId,
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.wid, self.store)
    }
}

impl WireEncode for Dependency {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.wid.encode(buf);
        self.store.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.wid.encoded_len() + self.store.encoded_len()
    }
}

impl WireDecode for Dependency {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(Dependency {
            wid: WriteId::decode(buf)?,
            store: StoreId::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_wire::{from_bytes, to_bytes};

    #[test]
    fn write_id_ordering_is_client_then_seq() {
        let a = WriteId::new(ClientId::new(1), 5);
        let b = WriteId::new(ClientId::new(2), 1);
        assert!(a < b, "ordering groups by client first");
        assert!(a < a.next());
    }

    #[test]
    fn wire_roundtrips() {
        let wid = WriteId::new(ClientId::new(7), 123);
        assert_eq!(from_bytes::<WriteId>(&to_bytes(&wid)).unwrap(), wid);
        let dep = Dependency {
            wid,
            store: StoreId::new(2),
        };
        assert_eq!(from_bytes::<Dependency>(&to_bytes(&dep)).unwrap(), dep);
        let c = ClientId::new(9);
        assert_eq!(from_bytes::<ClientId>(&to_bytes(&c)).unwrap(), c);
        let s = StoreId::new(4);
        assert_eq!(from_bytes::<StoreId>(&to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn displays() {
        assert_eq!(ClientId::new(1).to_string(), "c1");
        assert_eq!(StoreId::new(2).to_string(), "s2");
        assert_eq!(
            Dependency {
                wid: WriteId::new(ClientId::new(1), 3),
                store: StoreId::new(0)
            }
            .to_string(),
            "w(c1,3)@s0"
        );
    }
}
