//! Version vectors keyed by client.
//!
//! The paper's stores each keep "a version number (`expected_write[client]`)
//! that contains the value of the sequence number of the last performed
//! write or update for each client" (§4.2). [`VersionVector`] is that
//! table, with the lattice operations the protocols and checkers need.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

use crate::{ClientId, WriteId};

/// Relationship between two version vectors under the pointwise partial
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrd {
    /// Identical entries.
    Equal,
    /// Strictly less on at least one entry, nowhere greater.
    Before,
    /// Strictly greater on at least one entry, nowhere less.
    After,
    /// Incomparable: each is greater somewhere.
    Concurrent,
}

/// A per-client table of write sequence numbers.
///
/// Entry `c → n` means "the writes `1..=n` of client `c` are covered".
/// Missing entries mean `0`. The type doubles as the paper's
/// `expected_write` store table (what a replica has applied) and as the
/// causal dependency vector a write carries.
///
/// # Examples
///
/// ```
/// use globe_coherence::{ClientId, VersionVector, WriteId};
///
/// let mut applied = VersionVector::new();
/// let c = ClientId::new(1);
/// assert!(applied.is_next(WriteId::new(c, 1)));
/// applied.record(WriteId::new(c, 1));
/// assert!(!applied.is_next(WriteId::new(c, 3)), "gap: write 2 missing");
/// assert_eq!(applied.get(c), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionVector {
    entries: BTreeMap<ClientId, u64>,
}

impl VersionVector {
    /// An empty vector (all clients at 0).
    pub fn new() -> Self {
        VersionVector::default()
    }

    /// Sequence number covered for `client` (0 if absent).
    pub fn get(&self, client: ClientId) -> u64 {
        self.entries.get(&client).copied().unwrap_or(0)
    }

    /// Sets the entry for `client`.
    ///
    /// Storing 0 removes the entry, keeping the representation canonical
    /// so `Eq` matches the lattice's notion of equality.
    pub fn set(&mut self, client: ClientId, seq: u64) {
        if seq == 0 {
            self.entries.remove(&client);
        } else {
            self.entries.insert(client, seq);
        }
    }

    /// Increments `client`'s entry and returns the new value.
    pub fn bump(&mut self, client: ClientId) -> u64 {
        let next = self.get(client) + 1;
        self.entries.insert(client, next);
        next
    }

    /// Whether `wid` is the next expected write from its client
    /// (`wid.seq == get(wid.client) + 1`), i.e. applying it leaves no gap.
    pub fn is_next(&self, wid: WriteId) -> bool {
        wid.seq == self.get(wid.client) + 1
    }

    /// Whether `wid` is already covered (`wid.seq <= get(wid.client)`).
    pub fn covers(&self, wid: WriteId) -> bool {
        wid.seq <= self.get(wid.client)
    }

    /// Records `wid` as applied.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if applying `wid` would skip a sequence
    /// number; protocols must buffer out-of-order writes instead (that is
    /// precisely the PRAM rule of §4.2).
    pub fn record(&mut self, wid: WriteId) {
        debug_assert!(
            self.is_next(wid) || self.covers(wid),
            "recording {wid} would skip past {}",
            self.get(wid.client)
        );
        if wid.seq > self.get(wid.client) {
            self.entries.insert(wid.client, wid.seq);
        }
    }

    /// Unconditionally raises `client`'s entry to at least `seq`.
    ///
    /// This is the FIFO-model operation: overwriting semantics allow a
    /// store to jump over skipped writes.
    pub fn advance_to(&mut self, wid: WriteId) {
        if wid.seq > self.get(wid.client) {
            self.entries.insert(wid.client, wid.seq);
        }
    }

    /// Pointwise maximum (least upper bound).
    pub fn merge_max(&mut self, other: &VersionVector) {
        for (&client, &seq) in &other.entries {
            if seq > self.get(client) {
                self.entries.insert(client, seq);
            }
        }
    }

    /// Whether every entry of `other` is covered by `self` (pointwise ≥).
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other
            .entries
            .iter()
            .all(|(&client, &seq)| self.get(client) >= seq)
    }

    /// Compares under the pointwise partial order.
    pub fn compare(&self, other: &VersionVector) -> ClockOrd {
        let ge = self.dominates(other);
        let le = other.dominates(self);
        match (ge, le) {
            (true, true) => ClockOrd::Equal,
            (true, false) => ClockOrd::After,
            (false, true) => ClockOrd::Before,
            (false, false) => ClockOrd::Concurrent,
        }
    }

    /// Iterates over `(client, seq)` entries with non-zero seq.
    pub fn iter(&self) -> impl Iterator<Item = (ClientId, u64)> + '_ {
        self.entries.iter().map(|(&c, &s)| (c, s))
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether all entries are zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The writes present in `self` but not covered by `other`, as
    /// `(client, from_exclusive, to_inclusive)` ranges. Used to compute
    /// deltas for partial coherence transfers.
    pub fn missing_from(&self, other: &VersionVector) -> Vec<(ClientId, u64, u64)> {
        self.entries
            .iter()
            .filter_map(|(&client, &seq)| {
                let have = other.get(client);
                (seq > have).then_some((client, have, seq))
            })
            .collect()
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (client, seq)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{client}:{seq}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(ClientId, u64)> for VersionVector {
    fn from_iter<I: IntoIterator<Item = (ClientId, u64)>>(iter: I) -> Self {
        let mut vv = VersionVector::new();
        for (client, seq) in iter {
            vv.set(client, seq);
        }
        vv
    }
}

impl WireEncode for VersionVector {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.entries.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.entries.encoded_len()
    }
}

impl WireDecode for VersionVector {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let entries = BTreeMap::<ClientId, u64>::decode(buf)?;
        // Normalize: zero entries are not stored.
        let mut vv = VersionVector::new();
        for (c, s) in entries {
            vv.set(c, s);
        }
        Ok(vv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }

    #[test]
    fn get_set_bump() {
        let mut vv = VersionVector::new();
        assert_eq!(vv.get(c(1)), 0);
        assert_eq!(vv.bump(c(1)), 1);
        assert_eq!(vv.bump(c(1)), 2);
        vv.set(c(2), 7);
        assert_eq!(vv.get(c(2)), 7);
        vv.set(c(2), 0);
        assert!(vv.iter().all(|(client, _)| client != c(2)));
    }

    #[test]
    fn is_next_and_covers() {
        let mut vv = VersionVector::new();
        vv.set(c(1), 3);
        assert!(vv.is_next(WriteId::new(c(1), 4)));
        assert!(!vv.is_next(WriteId::new(c(1), 5)));
        assert!(vv.covers(WriteId::new(c(1), 3)));
        assert!(!vv.covers(WriteId::new(c(1), 4)));
    }

    #[test]
    fn record_ignores_duplicates() {
        let mut vv = VersionVector::new();
        vv.record(WriteId::new(c(1), 1));
        vv.record(WriteId::new(c(1), 1));
        assert_eq!(vv.get(c(1)), 1);
    }

    #[test]
    #[should_panic(expected = "skip")]
    #[cfg(debug_assertions)]
    fn record_gap_panics_in_debug() {
        let mut vv = VersionVector::new();
        vv.record(WriteId::new(c(1), 3));
    }

    #[test]
    fn advance_to_allows_gaps() {
        let mut vv = VersionVector::new();
        vv.advance_to(WriteId::new(c(1), 5));
        assert_eq!(vv.get(c(1)), 5);
        vv.advance_to(WriteId::new(c(1), 2));
        assert_eq!(vv.get(c(1)), 5, "never regresses");
    }

    #[test]
    fn lattice_operations() {
        let a: VersionVector = [(c(1), 2), (c(2), 1)].into_iter().collect();
        let b: VersionVector = [(c(1), 1), (c(3), 4)].into_iter().collect();
        assert_eq!(a.compare(&b), ClockOrd::Concurrent);
        let mut joined = a.clone();
        joined.merge_max(&b);
        assert!(joined.dominates(&a) && joined.dominates(&b));
        assert_eq!(joined.compare(&a), ClockOrd::After);
        assert_eq!(a.compare(&joined), ClockOrd::Before);
        assert_eq!(a.compare(&a.clone()), ClockOrd::Equal);
    }

    #[test]
    fn missing_from_reports_ranges() {
        let newer: VersionVector = [(c(1), 5), (c(2), 2)].into_iter().collect();
        let older: VersionVector = [(c(1), 3)].into_iter().collect();
        let missing = newer.missing_from(&older);
        assert_eq!(missing, vec![(c(1), 3, 5), (c(2), 0, 2)]);
        assert!(older.missing_from(&newer).is_empty());
    }

    #[test]
    fn canonical_eq_ignores_zero_entries() {
        let mut a = VersionVector::new();
        a.set(c(1), 1);
        a.set(c(1), 0);
        assert_eq!(a, VersionVector::new());
    }

    #[test]
    fn wire_roundtrip() {
        let vv: VersionVector = [(c(1), 9), (c(5), 1)].into_iter().collect();
        let bytes = globe_wire::to_bytes(&vv);
        assert_eq!(globe_wire::from_bytes::<VersionVector>(&bytes).unwrap(), vv);
    }

    #[test]
    fn display_is_compact() {
        let vv: VersionVector = [(c(1), 2)].into_iter().collect();
        assert_eq!(vv.to_string(), "[c1:2]");
    }
}
