//! Recorded executions.
//!
//! The deterministic simulator lets us treat a whole distributed run as
//! one replayable history: every client read/write, every store apply,
//! and each store's final state digest. The checkers in [`crate::check`]
//! then decide whether that history satisfies a given coherence model.

use std::collections::BTreeMap;

use globe_net::SimTime;

use crate::{ClientId, StoreId, VersionVector, WriteId};

/// Name of one page of a Web document; histories track coherence per page
/// ("a document is a collection of one or more pages", §1).
pub type PageKey = String;

/// What a client operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A read that returned the value written by `sees` (or the initial
    /// state when `None`), executed by a store whose applied-write vector
    /// was `store_version` at that moment.
    Read {
        /// The write whose value was returned.
        sees: Option<WriteId>,
        /// The executing store's applied vector at read time.
        store_version: VersionVector,
    },
    /// A write tagged `wid`, carrying causal dependencies `deps`
    /// (empty unless the object runs the causal model).
    Write {
        /// The write identifier (paper's WiD).
        wid: WriteId,
        /// Writes this one causally depends on.
        deps: VersionVector,
    },
}

/// One client-issued operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOp {
    /// Global record order; assigned monotonically by the recorder.
    pub tick: u64,
    /// Virtual time of execution.
    pub at: SimTime,
    /// The issuing client.
    pub client: ClientId,
    /// The store that executed the operation.
    pub store: StoreId,
    /// The page operated on.
    pub page: PageKey,
    /// Read or write payload.
    pub kind: OpKind,
}

/// One write being applied to one store's replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyRecord {
    /// Global record order shared with [`ClientOp::tick`].
    pub tick: u64,
    /// Virtual time of application.
    pub at: SimTime,
    /// The applying store.
    pub store: StoreId,
    /// The applied write.
    pub wid: WriteId,
    /// The page the write touched.
    pub page: PageKey,
}

/// A complete recorded execution.
///
/// # Examples
///
/// ```
/// use globe_coherence::{ClientId, History, StoreId, VersionVector, WriteId};
/// use globe_net::SimTime;
///
/// let mut h = History::new();
/// let (c, s) = (ClientId::new(1), StoreId::new(0));
/// let w = WriteId::new(c, 1);
/// h.record_write(SimTime::ZERO, c, s, "index.html", w, VersionVector::new());
/// h.record_apply(SimTime::ZERO, s, w, "index.html");
/// assert_eq!(h.writes().count(), 1);
/// assert_eq!(h.applies().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct History {
    next_tick: u64,
    ops: Vec<ClientOp>,
    applies: Vec<ApplyRecord>,
    final_digests: BTreeMap<StoreId, u64>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    fn tick(&mut self) -> u64 {
        let t = self.next_tick;
        self.next_tick += 1;
        t
    }

    /// Records a client read.
    #[allow(clippy::too_many_arguments)]
    pub fn record_read(
        &mut self,
        at: SimTime,
        client: ClientId,
        store: StoreId,
        page: impl Into<PageKey>,
        sees: Option<WriteId>,
        store_version: VersionVector,
    ) {
        let tick = self.tick();
        self.ops.push(ClientOp {
            tick,
            at,
            client,
            store,
            page: page.into(),
            kind: OpKind::Read {
                sees,
                store_version,
            },
        });
    }

    /// Records a client write submission.
    pub fn record_write(
        &mut self,
        at: SimTime,
        client: ClientId,
        store: StoreId,
        page: impl Into<PageKey>,
        wid: WriteId,
        deps: VersionVector,
    ) {
        let tick = self.tick();
        self.ops.push(ClientOp {
            tick,
            at,
            client,
            store,
            page: page.into(),
            kind: OpKind::Write { wid, deps },
        });
    }

    /// Records a store applying a write to its replica.
    pub fn record_apply(
        &mut self,
        at: SimTime,
        store: StoreId,
        wid: WriteId,
        page: impl Into<PageKey>,
    ) {
        let tick = self.tick();
        self.applies.push(ApplyRecord {
            tick,
            at,
            store,
            wid,
            page: page.into(),
        });
    }

    /// Records a store's final state digest (for convergence checking).
    pub fn record_final_digest(&mut self, store: StoreId, digest: u64) {
        self.final_digests.insert(store, digest);
    }

    /// All client operations in global record order.
    pub fn ops(&self) -> &[ClientOp] {
        &self.ops
    }

    /// All apply events in global record order.
    pub fn applies(&self) -> &[ApplyRecord] {
        &self.applies
    }

    /// Final state digests by store.
    pub fn final_digests(&self) -> &BTreeMap<StoreId, u64> {
        &self.final_digests
    }

    /// Client operations of one client, in program order.
    pub fn client_ops(&self, client: ClientId) -> impl Iterator<Item = &ClientOp> + '_ {
        self.ops.iter().filter(move |op| op.client == client)
    }

    /// All write submissions, in global record order.
    pub fn writes(&self) -> impl Iterator<Item = (&ClientOp, WriteId, &VersionVector)> + '_ {
        self.ops.iter().filter_map(|op| match &op.kind {
            OpKind::Write { wid, deps } => Some((op, *wid, deps)),
            OpKind::Read { .. } => None,
        })
    }

    /// Apply events of one store, in application order.
    pub fn store_applies(&self, store: StoreId) -> impl Iterator<Item = &ApplyRecord> + '_ {
        self.applies.iter().filter(move |a| a.store == store)
    }

    /// Every client that issued at least one operation.
    pub fn clients(&self) -> Vec<ClientId> {
        let mut out: Vec<ClientId> = self.ops.iter().map(|op| op.client).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every store that applied at least one write or served an operation.
    pub fn stores(&self) -> Vec<StoreId> {
        let mut out: Vec<StoreId> = self
            .applies
            .iter()
            .map(|a| a.store)
            .chain(self.ops.iter().map(|op| op.store))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.ops.len() + self.applies.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.applies.is_empty()
    }
}

/// 64-bit FNV-1a digest, used to fingerprint replica states for the
/// eventual-convergence checker without shipping whole states around.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn s(n: u32) -> StoreId {
        StoreId::new(n)
    }

    #[test]
    fn ticks_are_globally_monotone_across_streams() {
        let mut h = History::new();
        h.record_write(
            SimTime::ZERO,
            c(1),
            s(0),
            "p",
            WriteId::new(c(1), 1),
            VersionVector::new(),
        );
        h.record_apply(SimTime::ZERO, s(0), WriteId::new(c(1), 1), "p");
        h.record_read(
            SimTime::ZERO,
            c(1),
            s(0),
            "p",
            Some(WriteId::new(c(1), 1)),
            VersionVector::new(),
        );
        assert_eq!(h.ops()[0].tick, 0);
        assert_eq!(h.applies()[0].tick, 1);
        assert_eq!(h.ops()[1].tick, 2);
    }

    #[test]
    fn filtered_views() {
        let mut h = History::new();
        h.record_write(
            SimTime::ZERO,
            c(1),
            s(0),
            "p",
            WriteId::new(c(1), 1),
            VersionVector::new(),
        );
        h.record_write(
            SimTime::ZERO,
            c(2),
            s(1),
            "p",
            WriteId::new(c(2), 1),
            VersionVector::new(),
        );
        h.record_apply(SimTime::ZERO, s(0), WriteId::new(c(1), 1), "p");
        assert_eq!(h.clients(), vec![c(1), c(2)]);
        assert_eq!(h.stores(), vec![s(0), s(1)]);
        assert_eq!(h.client_ops(c(1)).count(), 1);
        assert_eq!(h.store_applies(s(0)).count(), 1);
        assert_eq!(h.writes().count(), 2);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"conference"), fnv1a(b"conference"));
    }
}
