//! Every scenario preset in the library must build, run its default
//! workload, and leave a history that satisfies its object's coherence
//! model — the §1 document gallery as an executable regression suite.

use std::time::Duration;

use globe_coherence::{check, ObjectModel};
use globe_workload::{run_workload, scenario, WorkloadSpec};

fn shrink(spec: WorkloadSpec) -> WorkloadSpec {
    WorkloadSpec {
        duration: Duration::from_secs(20),
        drain: Duration::from_secs(10),
        ..spec
    }
}

fn run_and_check(
    built: (scenario::ScenarioInstance, WorkloadSpec),
    model: ObjectModel,
) -> globe_workload::WorkloadOutcome {
    let (mut instance, spec) = built;
    let spec = shrink(spec);
    let outcome = run_workload(
        &mut instance.sim,
        &instance.readers,
        &instance.writers,
        &spec,
    );
    assert!(outcome.reads_issued > 0, "{}: no reads", instance.name);
    assert_eq!(
        outcome.writes_completed, outcome.writes_issued,
        "{}: writes lost on a clean network",
        instance.name
    );
    let history = instance.sim.history();
    let history = history.lock();
    check::check_object_model(&history, model).unwrap_or_else(|v| panic!("{}: {v}", instance.name));
    outcome
}

#[test]
fn conference_page_scenario() {
    let outcome = run_and_check(scenario::conference_page(101).unwrap(), ObjectModel::Pram);
    // The master's RYW guard forces demand traffic or fresh pushes; the
    // lazy strategy keeps messages per op modest.
    assert!(outcome.messages_per_op() < 10.0, "{outcome:?}");
}

#[test]
fn personal_home_page_scenario() {
    let (instance, spec) = scenario::personal_home_page(102).unwrap();
    // Eventual model: run then verify convergence by digest.
    let mut instance = instance;
    let spec = shrink(spec);
    let _ = run_workload(
        &mut instance.sim,
        &instance.readers,
        &instance.writers,
        &spec,
    );
    instance.sim.run_for(Duration::from_secs(30)); // pull period is 10 s
    instance.sim.finalize_digests();
    let history = instance.sim.history();
    let history = history.lock();
    check::check_eventual(&history).expect("home page replicas converge");
}

#[test]
fn popular_event_scenario() {
    let outcome = run_and_check(scenario::popular_event(103).unwrap(), ObjectModel::Fifo);
    // Twelve readers against mirrors: reads dominate and stay local.
    assert!(outcome.reads_completed > outcome.writes_completed * 3);
}

#[test]
fn news_forum_scenario() {
    let (instance, spec) = scenario::news_forum(104).unwrap();
    let mut instance = instance;
    let spec = shrink(spec);
    let _ = run_workload(
        &mut instance.sim,
        &instance.readers,
        &instance.writers,
        &spec,
    );
    let history = instance.sim.history();
    let history = history.lock();
    check::check_causal(&history).expect("forum causality");
    // Writers carry the WFR guard; verify it held for each.
    for writer in &instance.writers {
        check::check_writes_follow_reads(&history, writer.client).expect("wfr for writer");
    }
    for reader in &instance.readers {
        check::check_monotonic_reads(&history, reader.client).expect("mr for reader");
    }
}

#[test]
fn whiteboard_scenario() {
    run_and_check(scenario::whiteboard(105).unwrap(), ObjectModel::Sequential);
}
