//! Engine matrix smoke: one small engine workload on every backend,
//! asserting nonzero completed operations and settle-consistent final
//! reads — the engine's cross-backend contract.

use std::time::Duration;

use globe_coherence::StoreClass;
use globe_core::{
    BindOptions, GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, ObjectSpec, ReplicationPolicy,
    RuntimeConfig,
};
use globe_net::Topology;
use globe_web::{methods, WebSemantics};
use globe_workload::{run_engine, Arrival, EngineMode, EngineReport, WorkloadSpec};

fn smoke_spec() -> WorkloadSpec {
    WorkloadSpec {
        duration: Duration::from_millis(400),
        drain: Duration::from_millis(400),
        pages: 2,
        zipf_theta: 0.9,
        page_bytes: 64,
        incremental: true,
        reader_arrival: Arrival::Poisson(60.0),
        writer_arrival: Arrival::Poisson(30.0),
        seed: 11,
    }
}

/// Builds a two-store deployment, runs the engine, settles, and reads
/// the hottest page from both a writer-side and a reader-side client.
fn engine_smoke<R: GlobeRuntime>(rt: &mut R) -> (EngineReport, Vec<u8>, Vec<u8>) {
    let server = rt.add_node().unwrap();
    let mirror = rt.add_node().unwrap();
    let writer_node = rt.add_node().unwrap();
    let reader_node = rt.add_node().unwrap();
    let object = ObjectSpec::new("/engine/smoke")
        .policy(ReplicationPolicy::whiteboard())
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::Permanent)
        .create(rt)
        .unwrap();
    let writers = [
        rt.bind(object, writer_node, BindOptions::new().read_node(server))
            .unwrap(),
        rt.bind(object, writer_node, BindOptions::new().read_node(server))
            .unwrap(),
    ];
    let readers = [rt
        .bind(object, reader_node, BindOptions::new().read_node(mirror))
        .unwrap()];
    rt.start(&[writer_node, reader_node]);

    let report = run_engine(rt, &readers, &writers, &smoke_spec());
    rt.settle(Duration::from_millis(300));

    // The Zipf head page is all but certain to have been written; what
    // matters is that writer-side and reader-side replicas agree.
    let from_writer = rt
        .handle(writers[0])
        .read(methods::get_page("page000"))
        .unwrap();
    let from_reader = rt
        .handle(readers[0])
        .read(methods::get_page("page000"))
        .unwrap();
    (report, from_writer.to_vec(), from_reader.to_vec())
}

fn assert_smoke(report: &EngineReport, from_writer: &[u8], from_reader: &[u8]) {
    assert!(report.reads_completed > 0, "no reads completed: {report:?}");
    assert!(
        report.writes_completed > 0,
        "no writes completed: {report:?}"
    );
    assert!(report.read_latency.count > 0);
    assert!(report.write_latency.count > 0);
    assert!(report.ops_per_sec() > 0.0);
    assert_eq!(
        from_writer, from_reader,
        "settled replicas must serve the same final page"
    );
}

#[test]
fn engine_runs_on_sim() {
    let mut sim = GlobeSim::new(Topology::lan(), 31);
    let (report, w, r) = engine_smoke(&mut sim);
    assert_eq!(report.mode, EngineMode::Interleaved);
    assert_smoke(&report, &w, &r);
}

/// Group commit plus read leases must be a pure scheduling change: on
/// the deterministic simulator (fixed-latency LAN links, open-loop
/// arrivals), the batched-and-leased run assigns the same total order
/// as the unbatched run, so both end on bit-identical final pages.
#[test]
fn engine_batched_with_leases_matches_unbatched_on_sim() {
    let mut plain = GlobeSim::new(Topology::lan(), 31);
    let (_, plain_w, plain_r) = engine_smoke(&mut plain);

    let config = RuntimeConfig::new()
        .seed(31)
        .batch_max(8)
        .batch_window(Duration::from_millis(5))
        .read_leases(true)
        .lease_duration(Duration::from_secs(2));
    let mut batched = GlobeSim::with_config(Topology::lan(), config);
    let (report, batched_w, batched_r) = engine_smoke(&mut batched);

    assert_smoke(&report, &batched_w, &batched_r);
    assert_eq!(
        batched_w, plain_w,
        "group commit must not change the sequenced outcome"
    );
    assert_eq!(
        batched_r, plain_r,
        "leased reads must serve the same converged state"
    );

    // The reader population goes through the leased mirror: the
    // always-on protocol counters must show local lease serves, i.e. a
    // nonzero hit ratio — that is the whole point of read leases.
    let metrics = batched.metrics();
    let m = metrics.lock();
    assert!(
        m.protocol.lease_served > 0,
        "leased mirror reads must count as served locally"
    );
    assert!(
        m.protocol.lease_hit_ratio() > 0.0,
        "lease hit ratio must be positive with read_leases on"
    );
}

/// The batched engine also completes on the wall-clock backends, where
/// we can only demand internal agreement, not cross-run determinism.
#[test]
fn engine_batched_with_leases_runs_on_shard() {
    let config = RuntimeConfig::new()
        .seed(31)
        .batch_max(8)
        .batch_window(Duration::from_millis(2))
        .read_leases(true)
        .lease_duration(Duration::from_secs(2));
    let mut shard = GlobeShard::with_config(config);
    let (report, w, r) = engine_smoke(&mut shard);
    assert_smoke(&report, &w, &r);
    shard.shutdown();
}

#[test]
fn engine_runs_on_tcp() {
    let mut tcp = GlobeTcp::new();
    let (report, w, r) = engine_smoke(&mut tcp);
    assert_eq!(report.mode, EngineMode::Concurrent { threads: 3 });
    assert_smoke(&report, &w, &r);
    tcp.shutdown();
}

#[test]
fn engine_runs_on_shard() {
    let mut shard = GlobeShard::new(2);
    let (report, w, r) = engine_smoke(&mut shard);
    assert_eq!(report.mode, EngineMode::Concurrent { threads: 3 });
    assert_smoke(&report, &w, &r);
    shard.shutdown();
}
