//! The workload driver: schedules client operations against a
//! [`GlobeSim`] in virtual time and reports latency, staleness, and
//! traffic.

use std::collections::BTreeMap;
use std::time::Duration;

use globe_core::{CallError, ClientHandle, GlobeRuntime, GlobeSim, MethodKind, RequestId};
use globe_web::{methods, Page};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{staleness, Arrival, LatencySummary, StalenessSummary, Zipf};

/// Parameters of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// How long clients issue operations (virtual time).
    pub duration: Duration,
    /// Extra time after the last operation for propagation to settle.
    pub drain: Duration,
    /// Number of distinct pages in the document.
    pub pages: usize,
    /// Zipf skew of page popularity.
    pub zipf_theta: f64,
    /// Bytes written per write operation.
    pub page_bytes: usize,
    /// Incremental updates (`patch_page`) vs overwrites (`put_page`).
    pub incremental: bool,
    /// Arrival process of each reader.
    pub reader_arrival: Arrival,
    /// Arrival process of each writer.
    pub writer_arrival: Arrival,
    /// Seed for schedules and page choices.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            duration: Duration::from_secs(60),
            drain: Duration::from_secs(10),
            pages: 8,
            zipf_theta: 0.8,
            page_bytes: 512,
            incremental: true,
            reader_arrival: Arrival::Poisson(1.0),
            writer_arrival: Arrival::Poisson(0.2),
            seed: 1,
        }
    }
}

/// Aggregated results of one workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadOutcome {
    /// Reads issued.
    pub reads_issued: usize,
    /// Reads completed with a value.
    pub reads_completed: usize,
    /// Writes issued.
    pub writes_issued: usize,
    /// Writes acknowledged.
    pub writes_completed: usize,
    /// Read latency percentiles.
    pub read_latency: LatencySummary,
    /// Write (ack) latency percentiles.
    pub write_latency: LatencySummary,
    /// Staleness of reads against issued writes.
    pub staleness: StalenessSummary,
    /// Total coherence messages sent.
    pub messages: u64,
    /// Total coherence payload bytes sent.
    pub bytes: u64,
    /// Messages by protocol kind.
    pub traffic: BTreeMap<&'static str, (u64, u64)>,
    /// Virtual time consumed by the run.
    pub elapsed: Duration,
}

impl WorkloadOutcome {
    /// Messages per completed operation.
    pub fn messages_per_op(&self) -> f64 {
        let ops = (self.reads_completed + self.writes_completed).max(1);
        self.messages as f64 / ops as f64
    }

    /// Bytes per completed operation.
    pub fn bytes_per_op(&self) -> f64 {
        let ops = (self.reads_completed + self.writes_completed).max(1);
        self.bytes as f64 / ops as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
}

/// Runs `spec` against an already-built simulation with bound reader and
/// writer handles, and analyses the outcome.
pub fn run_workload(
    sim: &mut GlobeSim,
    readers: &[ClientHandle],
    writers: &[ClientHandle],
    spec: &WorkloadSpec,
) -> WorkloadOutcome {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.pages.max(1), spec.zipf_theta);
    let start = sim.now();
    let metrics_before = {
        let m = sim.metrics();
        let m = m.lock();
        (m.ops.len(), m.traffic.clone())
    };

    // Build the merged operation schedule.
    let mut schedule: Vec<(Duration, usize, OpClass)> = Vec::new();
    for (index, _) in readers.iter().enumerate() {
        for at in spec.reader_arrival.schedule(&mut rng, spec.duration) {
            schedule.push((at, index, OpClass::Read));
        }
    }
    for (index, _) in writers.iter().enumerate() {
        for at in spec.writer_arrival.schedule(&mut rng, spec.duration) {
            schedule.push((at, index, OpClass::Write));
        }
    }
    schedule.sort_by_key(|(at, index, class)| (*at, *index, *class == OpClass::Read));

    let mut pending: Vec<(ClientHandle, RequestId)> = Vec::new();
    let mut reads_issued = 0usize;
    let mut writes_issued = 0usize;
    let mut write_counter = 0u64;
    for (at, index, class) in schedule {
        let target = start + at;
        if target > sim.now() {
            sim.run_for(target.saturating_since(sim.now()));
        }
        match class {
            OpClass::Read => {
                let handle = readers[index];
                let page = format!("page{:03}", zipf.sample(&mut rng));
                if let Ok(req) = sim.issue_read(&handle, methods::get_page(&page)) {
                    pending.push((handle, req));
                    reads_issued += 1;
                }
            }
            OpClass::Write => {
                let handle = writers[index];
                let page = format!("page{:03}", zipf.sample(&mut rng));
                write_counter += 1;
                let inv = if spec.incremental {
                    let mut body = format!("[w{write_counter}]").into_bytes();
                    body.resize(spec.page_bytes.max(body.len()), b'x');
                    methods::patch_page(&page, &body)
                } else {
                    let mut body = format!("[w{write_counter}]").into_bytes();
                    body.resize(spec.page_bytes.max(body.len()), b'x');
                    methods::put_page(&page, &Page::html(body))
                };
                if let Ok(req) = sim.issue_write(&handle, inv) {
                    pending.push((handle, req));
                    writes_issued += 1;
                }
            }
        }
        let _ = rng.random::<u32>(); // decorrelate successive choices
    }
    sim.run_for(
        spec.duration
            .saturating_sub(sim.now().saturating_since(start)),
    );
    sim.run_for(spec.drain);
    sim.finalize_digests();

    // Collect completions.
    let mut reads_completed = 0usize;
    let mut writes_completed = 0usize;
    for (handle, req) in pending {
        if let Some(Ok(_)) = sim.result(&handle, req) {
            // Completed op kind is tracked in metrics; classify below.
            let _ = (&mut reads_completed, &mut writes_completed);
        }
    }

    // Latency and completion counts from metrics samples.
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let new_ops = &metrics.ops[metrics_before.0..];
    let mut read_samples = Vec::new();
    let mut write_samples = Vec::new();
    for op in new_ops {
        match op.kind {
            MethodKind::Read => {
                reads_completed += 1;
                read_samples.push(op.latency());
            }
            MethodKind::Write => {
                writes_completed += 1;
                write_samples.push(op.latency());
            }
        }
    }
    let mut traffic: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut messages = 0u64;
    let mut bytes = 0u64;
    for (kind, count) in &metrics.traffic {
        let before = metrics_before.1.get(kind).copied().unwrap_or_default();
        let delta_count = count.count - before.count;
        let delta_bytes = count.bytes - before.bytes;
        if delta_count > 0 {
            traffic.insert(kind, (delta_count, delta_bytes));
            messages += delta_count;
            bytes += delta_bytes;
        }
    }
    drop(metrics);

    let history = sim.history();
    let history = history.lock();
    let staleness_summary: StalenessSummary = staleness(&history);
    drop(history);

    WorkloadOutcome {
        reads_issued,
        reads_completed,
        writes_issued,
        writes_completed,
        read_latency: LatencySummary::of(read_samples),
        write_latency: LatencySummary::of(write_samples),
        staleness: staleness_summary,
        messages,
        bytes,
        traffic,
        elapsed: sim.now().saturating_since(start),
    }
}

/// Convenience: drives `n` sequential synchronous reads on any runtime
/// and returns the failures (used by smoke tests).
pub fn smoke_reads<R: GlobeRuntime>(
    rt: &mut R,
    handle: &ClientHandle,
    pages: &[String],
) -> Vec<(String, CallError)> {
    let mut failures = Vec::new();
    for page in pages {
        if let Err(e) = rt.handle(*handle).read(methods::get_page(page)) {
            failures.push((page.clone(), e));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use globe_coherence::StoreClass;
    use globe_core::{BindOptions, ObjectSpec, ReplicationPolicy};
    use globe_net::Topology;
    use globe_web::WebSemantics;

    use super::*;

    #[test]
    fn workload_runs_and_reports() {
        let mut sim = GlobeSim::new(Topology::lan(), 5);
        let server = sim.add_node();
        let cache = sim.add_node();
        let object = ObjectSpec::new("/w")
            .policy(ReplicationPolicy::magazine())
            .semantics(WebSemantics::new)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ObjectInitiated)
            .create(&mut sim)
            .unwrap();
        let writer = sim
            .bind(object, server, BindOptions::new().read_node(server))
            .unwrap();
        let reader = sim
            .bind(object, cache, BindOptions::new().read_node(cache))
            .unwrap();
        let spec = WorkloadSpec {
            duration: Duration::from_secs(20),
            drain: Duration::from_secs(10),
            pages: 4,
            reader_arrival: Arrival::Poisson(2.0),
            writer_arrival: Arrival::Poisson(0.5),
            ..WorkloadSpec::default()
        };
        let outcome = run_workload(&mut sim, &[reader], &[writer], &spec);
        assert!(outcome.reads_issued > 10, "{outcome:?}");
        assert!(outcome.writes_issued > 2, "{outcome:?}");
        assert_eq!(outcome.reads_completed, outcome.reads_issued);
        assert_eq!(outcome.writes_completed, outcome.writes_issued);
        assert!(outcome.messages > 0);
        assert!(outcome.read_latency.count > 0);
        assert!(outcome.messages_per_op() > 0.0);
        assert!(outcome.bytes_per_op() > 0.0);
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let run = || {
            let mut sim = GlobeSim::new(Topology::wan(), 9);
            let server = sim.add_node();
            let cache = sim.add_node();
            let object = ObjectSpec::new("/w")
                .policy(ReplicationPolicy::magazine())
                .semantics(WebSemantics::new)
                .store(server, StoreClass::Permanent)
                .store(cache, StoreClass::ObjectInitiated)
                .create(&mut sim)
                .unwrap();
            let writer = sim
                .bind(object, server, BindOptions::new().read_node(server))
                .unwrap();
            let reader = sim
                .bind(object, cache, BindOptions::new().read_node(cache))
                .unwrap();
            let spec = WorkloadSpec {
                duration: Duration::from_secs(10),
                ..WorkloadSpec::default()
            };
            let o = run_workload(&mut sim, &[reader], &[writer], &spec);
            (
                o.reads_issued,
                o.writes_issued,
                o.messages,
                o.bytes,
                o.read_latency,
            )
        };
        assert_eq!(run(), run());
    }
}
