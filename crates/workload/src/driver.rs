//! The workload driver: schedules client operations against a
//! [`GlobeSim`] in virtual time and reports latency, staleness, and
//! traffic.

use std::collections::BTreeMap;
use std::time::Duration;

use globe_core::{CallError, ClientHandle, GlobeRuntime, GlobeSim};
use globe_web::methods;

use crate::{Arrival, LatencySummary, StalenessSummary};

/// Parameters of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// How long clients issue operations (virtual time).
    pub duration: Duration,
    /// Extra time after the last operation for propagation to settle.
    pub drain: Duration,
    /// Number of distinct pages in the document.
    pub pages: usize,
    /// Zipf skew of page popularity.
    pub zipf_theta: f64,
    /// Bytes written per write operation.
    pub page_bytes: usize,
    /// Incremental updates (`patch_page`) vs overwrites (`put_page`).
    pub incremental: bool,
    /// Arrival process of each reader.
    pub reader_arrival: Arrival,
    /// Arrival process of each writer.
    pub writer_arrival: Arrival,
    /// Seed for schedules and page choices.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            duration: Duration::from_secs(60),
            drain: Duration::from_secs(10),
            pages: 8,
            zipf_theta: 0.8,
            page_bytes: 512,
            incremental: true,
            reader_arrival: Arrival::Poisson(1.0),
            writer_arrival: Arrival::Poisson(0.2),
            seed: 1,
        }
    }
}

/// Aggregated results of one workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadOutcome {
    /// Reads issued.
    pub reads_issued: usize,
    /// Reads completed with a value.
    pub reads_completed: usize,
    /// Writes issued.
    pub writes_issued: usize,
    /// Writes acknowledged.
    pub writes_completed: usize,
    /// Read latency percentiles.
    pub read_latency: LatencySummary,
    /// Write (ack) latency percentiles.
    pub write_latency: LatencySummary,
    /// Staleness of reads against issued writes.
    pub staleness: StalenessSummary,
    /// Total coherence messages sent.
    pub messages: u64,
    /// Total coherence payload bytes sent.
    pub bytes: u64,
    /// Messages by protocol kind.
    pub traffic: BTreeMap<&'static str, (u64, u64)>,
    /// Virtual time consumed by the run.
    pub elapsed: Duration,
}

impl WorkloadOutcome {
    /// Messages per completed operation.
    pub fn messages_per_op(&self) -> f64 {
        let ops = (self.reads_completed + self.writes_completed).max(1);
        self.messages as f64 / ops as f64
    }

    /// Bytes per completed operation.
    pub fn bytes_per_op(&self) -> f64 {
        let ops = (self.reads_completed + self.writes_completed).max(1);
        self.bytes as f64 / ops as f64
    }
}

/// Runs `spec` against an already-built simulation with bound reader and
/// writer handles, and analyses the outcome.
///
/// A thin sim-backed wrapper over the backend-generic engine: the
/// schedule replays through [`crate::engine`]'s interleaved virtual-time
/// path (a [`crate::WorkloadClock::Virtual`] clock over
/// [`GlobeRuntime::settle`]), then the store digests are finalized for
/// the coherence checkers that typically follow a run.
pub fn run_workload(
    sim: &mut GlobeSim,
    readers: &[ClientHandle],
    writers: &[ClientHandle],
    spec: &WorkloadSpec,
) -> WorkloadOutcome {
    let outcome = crate::engine::interleaved_outcome(
        sim,
        readers,
        writers,
        spec,
        crate::WorkloadClock::virtual_clock(),
    );
    sim.finalize_digests();
    outcome
}

/// Convenience: drives `n` sequential synchronous reads on any runtime
/// and returns the failures (used by smoke tests).
pub fn smoke_reads<R: GlobeRuntime>(
    rt: &mut R,
    handle: &ClientHandle,
    pages: &[String],
) -> Vec<(String, CallError)> {
    let mut failures = Vec::new();
    for page in pages {
        if let Err(e) = rt.handle(*handle).read(methods::get_page(page)) {
            failures.push((page.clone(), e));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use globe_coherence::StoreClass;
    use globe_core::{BindOptions, ObjectSpec, ReplicationPolicy};
    use globe_net::Topology;
    use globe_web::WebSemantics;

    use super::*;

    #[test]
    fn workload_runs_and_reports() {
        let mut sim = GlobeSim::new(Topology::lan(), 5);
        let server = sim.add_node();
        let cache = sim.add_node();
        let object = ObjectSpec::new("/w")
            .policy(ReplicationPolicy::magazine())
            .semantics(WebSemantics::new)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ObjectInitiated)
            .create(&mut sim)
            .unwrap();
        let writer = sim
            .bind(object, server, BindOptions::new().read_node(server))
            .unwrap();
        let reader = sim
            .bind(object, cache, BindOptions::new().read_node(cache))
            .unwrap();
        let spec = WorkloadSpec {
            duration: Duration::from_secs(20),
            drain: Duration::from_secs(10),
            pages: 4,
            reader_arrival: Arrival::Poisson(2.0),
            writer_arrival: Arrival::Poisson(0.5),
            ..WorkloadSpec::default()
        };
        let outcome = run_workload(&mut sim, &[reader], &[writer], &spec);
        assert!(outcome.reads_issued > 10, "{outcome:?}");
        assert!(outcome.writes_issued > 2, "{outcome:?}");
        assert_eq!(outcome.reads_completed, outcome.reads_issued);
        assert_eq!(outcome.writes_completed, outcome.writes_issued);
        assert!(outcome.messages > 0);
        assert!(outcome.read_latency.count > 0);
        assert!(outcome.messages_per_op() > 0.0);
        assert!(outcome.bytes_per_op() > 0.0);
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let run = || {
            let mut sim = GlobeSim::new(Topology::wan(), 9);
            let server = sim.add_node();
            let cache = sim.add_node();
            let object = ObjectSpec::new("/w")
                .policy(ReplicationPolicy::magazine())
                .semantics(WebSemantics::new)
                .store(server, StoreClass::Permanent)
                .store(cache, StoreClass::ObjectInitiated)
                .create(&mut sim)
                .unwrap();
            let writer = sim
                .bind(object, server, BindOptions::new().read_node(server))
                .unwrap();
            let reader = sim
                .bind(object, cache, BindOptions::new().read_node(cache))
                .unwrap();
            let spec = WorkloadSpec {
                duration: Duration::from_secs(10),
                ..WorkloadSpec::default()
            };
            let o = run_workload(&mut sim, &[reader], &[writer], &spec);
            (
                o.reads_issued,
                o.writes_issued,
                o.messages,
                o.bytes,
                o.read_latency,
            )
        };
        assert_eq!(run(), run());
    }
}
