//! Percentiles and staleness analysis over recorded executions.

use std::collections::HashMap;
use std::time::Duration;

use globe_coherence::{ClientId, History, OpKind, WriteId};
use globe_net::SimTime;

/// Percentile summary of a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes `samples` (need not be sorted).
    pub fn of(mut samples: Vec<Duration>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        // Nearest-rank percentile, rank = ceil(q·N), in exact integer
        // arithmetic: float rounding (0.95 × 20 = 19.000000000000004)
        // would otherwise bump a rank past its bucket, so a quantile is
        // a ratio in parts per thousand. For counts below 1/(1-q) the
        // rank saturates at N (e.g. p999 of 10 samples is the max) —
        // never a panic, never an off-by-one.
        let pick = |permille: usize| {
            let rank = (permille * count).div_ceil(1000);
            samples[rank.clamp(1, count) - 1]
        };
        LatencySummary {
            count,
            mean: total / count as u32,
            p50: pick(500),
            p95: pick(950),
            p99: pick(990),
            p999: pick(999),
            max: samples[count - 1],
        }
    }
}

/// How stale reads were, measured against the writes issued system-wide.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StalenessSummary {
    /// Reads analysed.
    pub reads: usize,
    /// Fraction of reads that missed at least one already-issued write.
    pub stale_fraction: f64,
    /// Mean number of missing writes per read.
    pub mean_missing_writes: f64,
    /// Mean age of the oldest missing write at read time (stale reads
    /// only).
    pub mean_staleness: Duration,
    /// Maximum such age.
    pub max_staleness: Duration,
}

/// Computes staleness of every read in `history`: a read is stale if, at
/// the moment it executed, some client had already issued a write the
/// serving store had not applied.
pub fn staleness(history: &History) -> StalenessSummary {
    // Issue time of every write, and per-client issue timeline.
    let mut issue_time: HashMap<WriteId, SimTime> = HashMap::new();
    let mut timelines: HashMap<ClientId, Vec<SimTime>> = HashMap::new();
    for (op, wid, _) in history.writes() {
        issue_time.insert(wid, op.at);
        timelines.entry(wid.client).or_default().push(op.at);
    }
    let issued_by = |client: ClientId, at: SimTime| -> u64 {
        timelines
            .get(&client)
            .map(|times| times.iter().take_while(|&&t| t <= at).count() as u64)
            .unwrap_or(0)
    };

    let mut reads = 0usize;
    let mut stale_reads = 0usize;
    let mut total_missing = 0u64;
    let mut stale_ages: Vec<Duration> = Vec::new();
    for op in history.ops() {
        let OpKind::Read { store_version, .. } = &op.kind else {
            continue;
        };
        reads += 1;
        let mut missing = 0u64;
        let mut oldest_missing: Option<SimTime> = None;
        for (&client, times) in &timelines {
            let issued = issued_by(client, op.at);
            let have = store_version.get(client);
            if issued > have {
                missing += issued - have;
                let first_missing = times[have as usize]; // 0-indexed seq have+1
                oldest_missing = Some(match oldest_missing {
                    Some(t) if t <= first_missing => t,
                    _ => first_missing,
                });
            }
        }
        if missing > 0 {
            stale_reads += 1;
            total_missing += missing;
            if let Some(t) = oldest_missing {
                stale_ages.push(op.at.saturating_since(t));
            }
        }
    }
    let mean_staleness = if stale_ages.is_empty() {
        Duration::ZERO
    } else {
        stale_ages.iter().sum::<Duration>() / stale_ages.len() as u32
    };
    StalenessSummary {
        reads,
        stale_fraction: if reads == 0 {
            0.0
        } else {
            stale_reads as f64 / reads as f64
        },
        mean_missing_writes: if reads == 0 {
            0.0
        } else {
            total_missing as f64 / reads as f64
        },
        mean_staleness,
        max_staleness: stale_ages.into_iter().max().unwrap_or(Duration::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use globe_coherence::{StoreId, VersionVector};

    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::of(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencySummary::of(Vec::new()).count, 0);
    }

    #[test]
    fn p999_nearest_rank() {
        let samples: Vec<Duration> = (1..=2000).map(Duration::from_millis).collect();
        let s = LatencySummary::of(samples);
        // ceil(0.999 · 2000) = 1998.
        assert_eq!(s.p999, Duration::from_millis(1998));
        assert_eq!(s.p99, Duration::from_millis(1980));
        assert_eq!(s.max, Duration::from_millis(2000));
    }

    #[test]
    fn tiny_sample_counts_saturate_without_panicking() {
        // One sample: every percentile is that sample.
        let s = LatencySummary::of(vec![Duration::from_millis(7)]);
        for p in [s.p50, s.p95, s.p99, s.p999, s.max] {
            assert_eq!(p, Duration::from_millis(7));
        }
        // Two samples: the median is the lower one (nearest rank
        // ceil(0.5 · 2) = 1), everything above saturates at the max.
        let s = LatencySummary::of(vec![Duration::from_millis(1), Duration::from_millis(9)]);
        assert_eq!(s.p50, Duration::from_millis(1));
        for p in [s.p95, s.p99, s.p999, s.max] {
            assert_eq!(p, Duration::from_millis(9));
        }
    }

    #[test]
    fn integer_ranking_is_immune_to_float_rounding() {
        // 0.95 × 20 is 19.000000000000004 in f64; ceil would bump the
        // rank to 20 and report the max as p95. Integer nearest-rank
        // must report the 19th sample.
        let samples: Vec<Duration> = (1..=20).map(Duration::from_millis).collect();
        let s = LatencySummary::of(samples);
        assert_eq!(s.p95, Duration::from_millis(19));
        // Same shape at other scales: 0.999 × 1000 = 999 exactly.
        let samples: Vec<Duration> = (1..=1000).map(Duration::from_millis).collect();
        let s = LatencySummary::of(samples);
        assert_eq!(s.p999, Duration::from_millis(999));
        assert_eq!(s.p50, Duration::from_millis(500));
    }

    #[test]
    fn staleness_counts_missing_writes() {
        let mut h = History::new();
        let writer = ClientId::new(1);
        let reader = ClientId::new(2);
        let s0 = StoreId::new(0);
        let s1 = StoreId::new(1);
        // Writer issues 3 writes at t=1,2,3.
        for seq in 1..=3u64 {
            h.record_write(
                SimTime::from_secs(seq),
                writer,
                s0,
                "p",
                WriteId::new(writer, seq),
                VersionVector::new(),
            );
        }
        // A read at t=4 from a store that only applied write 1.
        let version: VersionVector = [(writer, 1u64)].into_iter().collect();
        h.record_read(SimTime::from_secs(4), reader, s1, "p", None, version);
        // A fully fresh read at t=5.
        let version: VersionVector = [(writer, 3u64)].into_iter().collect();
        h.record_read(SimTime::from_secs(5), reader, s1, "p", None, version);

        let s = staleness(&h);
        assert_eq!(s.reads, 2);
        assert_eq!(s.stale_fraction, 0.5);
        assert_eq!(s.mean_missing_writes, 1.0); // 2 missing over 2 reads
                                                // Oldest missing was write 2 issued at t=2, read at t=4 → 2 s.
        assert_eq!(s.mean_staleness, Duration::from_secs(2));
        assert_eq!(s.max_staleness, Duration::from_secs(2));
    }

    #[test]
    fn fresh_history_has_no_staleness() {
        let mut h = History::new();
        h.record_read(
            SimTime::from_secs(1),
            ClientId::new(1),
            StoreId::new(0),
            "p",
            None,
            VersionVector::new(),
        );
        let s = staleness(&h);
        assert_eq!(s.stale_fraction, 0.0);
        assert_eq!(s.mean_staleness, Duration::ZERO);
    }
}
