//! The backend-generic load engine.
//!
//! [`run_engine`] drives a workload against *any* [`GlobeRuntime`], in
//! one of two modes chosen by the backend's capabilities:
//!
//! - **Concurrent (open-loop)** — when the runtime exposes an
//!   [`EnginePort`] (TCP, shard), every reader and writer handle gets
//!   its own thread issuing on its own arrival schedule in wall-clock
//!   time. Arrivals are *open-loop*: the next operation is issued at
//!   its scheduled instant whether or not earlier ones have completed,
//!   so a backend at capacity accumulates a queue instead of silently
//!   slowing the generator down — the completed-operation rate under
//!   that pressure *is* the throughput ceiling. Latency is measured
//!   client-side per operation into a per-thread [`SampleSink`] (no
//!   shared state on the hot path) and merged after the threads join.
//!
//! - **Interleaved (virtual time)** — when there is no port (the
//!   deterministic simulator), the merged arrival schedule is replayed
//!   on the caller's thread, advancing the runtime between operations
//!   through the [`WorkloadClock`]. This is exactly the classic
//!   [`crate::run_workload`] behaviour, now expressed over the trait.
//!
//! The clock abstraction is what lets one driver body serve both
//! regimes: [`WorkloadClock::Virtual`] turns `advance_to` into
//! [`GlobeRuntime::settle`] calls and tracks the cursor as logical
//! time; [`WorkloadClock::Wall`] measures real elapsed time and lets
//! `settle` pump the runtime while the wall clock catches up.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use globe_core::{ClientHandle, EnginePort, GlobeRuntime, MethodKind, RequestId};
use globe_web::{methods, Page};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{staleness, LatencySummary, WorkloadOutcome, WorkloadSpec, Zipf};

/// How often a waiting worker polls its pending operations, and the
/// backoff between drain rounds.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// How many pending operations one poll round inspects. Completions
/// are close to FIFO per handle, so a bounded scan keeps polling O(1)
/// even when an open-loop queue has ballooned past the backend's
/// capacity.
const POLL_SCAN: usize = 128;

/// The engine's notion of time: an offset since the start of the run,
/// advanced either by simulating (virtual) or by waiting (wall).
#[derive(Debug, Clone, Copy)]
pub enum WorkloadClock {
    /// Logical time: `advance_to` runs the simulator forward and the
    /// cursor is the amount of virtual time consumed so far.
    Virtual {
        /// Virtual time consumed since the start of the run.
        cursor: Duration,
    },
    /// Real time: `advance_to` sleeps (through [`GlobeRuntime::settle`],
    /// so caller-driven endpoints keep getting pumped) until the wall
    /// clock reaches the target offset.
    Wall {
        /// When the run started.
        start: Instant,
    },
}

impl WorkloadClock {
    /// A virtual-time clock at offset zero.
    pub fn virtual_clock() -> WorkloadClock {
        WorkloadClock::Virtual {
            cursor: Duration::ZERO,
        }
    }

    /// A wall-clock starting now.
    pub fn wall_clock() -> WorkloadClock {
        WorkloadClock::Wall {
            start: Instant::now(),
        }
    }

    /// The current offset since the start of the run.
    pub fn now(&self) -> Duration {
        match *self {
            WorkloadClock::Virtual { cursor } => cursor,
            WorkloadClock::Wall { start } => start.elapsed(),
        }
    }

    /// Advances runtime time to `target` (an offset since the run's
    /// start): virtual clocks simulate the gap, wall clocks let it
    /// elapse. A target already in the past is a no-op.
    pub fn advance_to<R: GlobeRuntime>(&mut self, rt: &mut R, target: Duration) {
        let now = self.now();
        if target > now {
            rt.settle(target - now);
        }
        if let WorkloadClock::Virtual { cursor } = self {
            *cursor = (*cursor).max(target);
        }
    }
}

/// A per-thread latency recorder: plain appends on the hot path, no
/// locks, no sharing — sinks are merged once after the worker threads
/// join.
#[derive(Debug, Default)]
pub struct SampleSink {
    samples: Vec<Duration>,
}

impl SampleSink {
    /// A sink with room for `capacity` samples before reallocating.
    pub fn with_capacity(capacity: usize) -> SampleSink {
        SampleSink {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Moves another sink's samples into this one.
    pub fn merge(&mut self, other: SampleSink) {
        let mut other = other;
        self.samples.append(&mut other.samples);
    }

    /// Summarizes the recorded samples.
    pub fn summary(self) -> LatencySummary {
        LatencySummary::of(self.samples)
    }
}

/// Which regime the engine ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Virtual-time interleaved schedule on the caller's thread.
    Interleaved,
    /// Wall-clock open-loop drivers, one thread per handle.
    Concurrent {
        /// Worker threads that ran (readers + writers).
        threads: usize,
    },
}

/// Aggregated results of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The regime the engine ran in.
    pub mode: EngineMode,
    /// Reads issued.
    pub reads_issued: usize,
    /// Reads completed.
    pub reads_completed: usize,
    /// Writes issued.
    pub writes_issued: usize,
    /// Writes completed.
    pub writes_completed: usize,
    /// Operations that failed to issue (e.g. a saturated backend
    /// refusing a call).
    pub issue_errors: usize,
    /// Operations still pending when the drain window closed.
    pub abandoned: usize,
    /// Read latency percentiles (client-observed in concurrent mode,
    /// runtime-recorded in interleaved mode).
    pub read_latency: LatencySummary,
    /// Write latency percentiles.
    pub write_latency: LatencySummary,
    /// Total run time: wall time in concurrent mode, virtual time in
    /// interleaved mode.
    pub elapsed: Duration,
}

impl EngineReport {
    /// Completed operations per second of `elapsed` (wall seconds in
    /// concurrent mode, virtual seconds in interleaved mode).
    pub fn ops_per_sec(&self) -> f64 {
        let ops = (self.reads_completed + self.writes_completed) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ops / secs
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
}

/// Builds the invocation for one operation, mirroring the classic
/// driver: Zipf-chosen page, fixed-size body stamped with the writer's
/// op counter.
fn invocation_for(
    class: OpClass,
    page: &str,
    counter: u64,
    spec: &WorkloadSpec,
) -> globe_core::InvocationMessage {
    match class {
        OpClass::Read => methods::get_page(page),
        OpClass::Write => {
            let mut body = format!("[w{counter}]").into_bytes();
            body.resize(spec.page_bytes.max(body.len()), b'x');
            if spec.incremental {
                methods::patch_page(page, &body)
            } else {
                methods::put_page(page, &Page::html(body))
            }
        }
    }
}

/// What one concurrent worker hands back when it joins.
#[derive(Debug, Default)]
struct WorkerStats {
    issued: usize,
    completed: usize,
    errors: usize,
    abandoned: usize,
    sink: SampleSink,
}

/// Polls up to [`POLL_SCAN`] pending operations, recording the latency
/// of every completion into the worker's sink.
fn poll_pending(
    port: &dyn EnginePort,
    handle: &ClientHandle,
    pending: &mut Vec<(RequestId, Instant)>,
    stats: &mut WorkerStats,
) {
    let mut index = 0;
    let mut scanned = 0;
    while index < pending.len() && scanned < POLL_SCAN {
        let (req, issued_at) = pending[index];
        if let Some(result) = port.try_result(handle, req) {
            pending.swap_remove(index);
            if result.is_ok() {
                stats.completed += 1;
                stats.sink.record(issued_at.elapsed());
            } else {
                stats.errors += 1;
            }
        } else {
            index += 1;
        }
        scanned += 1;
    }
}

/// One open-loop worker: issues on its own arrival schedule in wall
/// time, polling opportunistically, then drains.
fn drive_worker(
    port: &dyn EnginePort,
    handle: ClientHandle,
    class: OpClass,
    spec: &WorkloadSpec,
    salt: u64,
) -> WorkerStats {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(salt));
    let zipf = Zipf::new(spec.pages.max(1), spec.zipf_theta);
    let arrival = match class {
        OpClass::Read => spec.reader_arrival,
        OpClass::Write => spec.writer_arrival,
    };
    let mut stats = WorkerStats::default();
    let mut pending: Vec<(RequestId, Instant)> = Vec::new();
    let mut counter = 0u64;
    let start = Instant::now();
    let mut next_at = arrival.next_gap(&mut rng);
    // Open loop: issue at the scheduled instants until the window
    // closes. The elapsed guard also bounds zero-gap (maximum-rate)
    // schedules, whose `next_at` never advances past the horizon.
    while next_at <= spec.duration && start.elapsed() <= spec.duration {
        loop {
            let now = start.elapsed();
            if now >= next_at {
                break;
            }
            poll_pending(port, &handle, &mut pending, &mut stats);
            std::thread::sleep((next_at - now).min(POLL_INTERVAL));
        }
        counter += 1;
        let page = format!("page{:03}", zipf.sample(&mut rng));
        let inv = invocation_for(class, &page, counter, spec);
        match port.issue(&handle, inv, class == OpClass::Read) {
            Ok(req) => {
                pending.push((req, Instant::now()));
                stats.issued += 1;
            }
            Err(_) => stats.errors += 1,
        }
        poll_pending(port, &handle, &mut pending, &mut stats);
        next_at += arrival.next_gap(&mut rng);
    }
    // Drain: keep polling until everything completes or the drain
    // window closes.
    let deadline = Instant::now() + spec.drain;
    while !pending.is_empty() && Instant::now() < deadline {
        poll_pending(port, &handle, &mut pending, &mut stats);
        if !pending.is_empty() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
    stats.abandoned = pending.len();
    stats
}

/// The concurrent wall-clock path: one thread per handle, all issuing
/// through the shared [`EnginePort`].
fn concurrent_drive(
    port: &dyn EnginePort,
    readers: &[ClientHandle],
    writers: &[ClientHandle],
    spec: &WorkloadSpec,
) -> EngineReport {
    let started = Instant::now();
    let mut worker_stats: Vec<(OpClass, WorkerStats)> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (index, &handle) in writers.iter().enumerate() {
            let salt = 0x5757_0000 + index as u64;
            joins.push((
                OpClass::Write,
                scope.spawn(move || drive_worker(port, handle, OpClass::Write, spec, salt)),
            ));
        }
        for (index, &handle) in readers.iter().enumerate() {
            let salt = 0x5252_0000 + index as u64;
            joins.push((
                OpClass::Read,
                scope.spawn(move || drive_worker(port, handle, OpClass::Read, spec, salt)),
            ));
        }
        for (class, join) in joins {
            // A panicked worker loses its slice of the load; surface it.
            let stats = join.join().expect("engine worker panicked");
            worker_stats.push((class, stats));
        }
    });
    let elapsed = started.elapsed();

    let mut report = EngineReport {
        mode: EngineMode::Concurrent {
            threads: readers.len() + writers.len(),
        },
        reads_issued: 0,
        reads_completed: 0,
        writes_issued: 0,
        writes_completed: 0,
        issue_errors: 0,
        abandoned: 0,
        read_latency: LatencySummary::default(),
        write_latency: LatencySummary::default(),
        elapsed,
    };
    let mut read_sink = SampleSink::default();
    let mut write_sink = SampleSink::default();
    for (class, stats) in worker_stats {
        report.issue_errors += stats.errors;
        report.abandoned += stats.abandoned;
        match class {
            OpClass::Read => {
                report.reads_issued += stats.issued;
                report.reads_completed += stats.completed;
                read_sink.merge(stats.sink);
            }
            OpClass::Write => {
                report.writes_issued += stats.issued;
                report.writes_completed += stats.completed;
                write_sink.merge(stats.sink);
            }
        }
    }
    report.read_latency = read_sink.summary();
    report.write_latency = write_sink.summary();
    report
}

/// The interleaved path: the merged arrival schedule replays on the
/// caller's thread, advancing the runtime through `clock` between
/// operations. Latency and completion counts come from the runtime's
/// own metrics (virtual-time samples on the simulator), traffic and
/// staleness from its metrics and history — the full classic
/// [`WorkloadOutcome`].
pub(crate) fn interleaved_outcome<R: GlobeRuntime>(
    rt: &mut R,
    readers: &[ClientHandle],
    writers: &[ClientHandle],
    spec: &WorkloadSpec,
    mut clock: WorkloadClock,
) -> WorkloadOutcome {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.pages.max(1), spec.zipf_theta);
    let metrics_before = {
        let m = rt.metrics();
        let m = m.lock();
        (m.ops.len(), m.traffic.clone())
    };

    // Build the merged operation schedule.
    let mut schedule: Vec<(Duration, usize, OpClass)> = Vec::new();
    for (index, _) in readers.iter().enumerate() {
        for at in spec.reader_arrival.schedule(&mut rng, spec.duration) {
            schedule.push((at, index, OpClass::Read));
        }
    }
    for (index, _) in writers.iter().enumerate() {
        for at in spec.writer_arrival.schedule(&mut rng, spec.duration) {
            schedule.push((at, index, OpClass::Write));
        }
    }
    schedule.sort_by_key(|(at, index, class)| (*at, *index, *class == OpClass::Read));

    let mut pending: Vec<(ClientHandle, RequestId)> = Vec::new();
    let mut reads_issued = 0usize;
    let mut writes_issued = 0usize;
    let mut write_counter = 0u64;
    for (at, index, class) in schedule {
        clock.advance_to(rt, at);
        let handle = match class {
            OpClass::Read => readers[index],
            OpClass::Write => writers[index],
        };
        let page = format!("page{:03}", zipf.sample(&mut rng));
        match class {
            OpClass::Read => {
                if let Ok(req) = rt.issue_read(&handle, invocation_for(class, &page, 0, spec)) {
                    pending.push((handle, req));
                    reads_issued += 1;
                }
            }
            OpClass::Write => {
                write_counter += 1;
                let inv = invocation_for(class, &page, write_counter, spec);
                if let Ok(req) = rt.issue_write(&handle, inv) {
                    pending.push((handle, req));
                    writes_issued += 1;
                }
            }
        }
        let _ = rng.random::<u32>(); // decorrelate successive choices
    }
    clock.advance_to(rt, spec.duration);
    let drain_until = spec.duration + spec.drain;
    clock.advance_to(rt, drain_until);

    // Collect any still-unclaimed results (each poll also lets the
    // runtime make a little progress, per the trait's contract).
    for (handle, req) in pending {
        let _ = rt.result(&handle, req);
    }

    // Latency and completion counts from metrics samples.
    let metrics = rt.metrics();
    let metrics = metrics.lock();
    let new_ops = &metrics.ops[metrics_before.0..];
    let mut read_samples = Vec::new();
    let mut write_samples = Vec::new();
    let mut reads_completed = 0usize;
    let mut writes_completed = 0usize;
    for op in new_ops {
        match op.kind {
            MethodKind::Read => {
                reads_completed += 1;
                read_samples.push(op.latency());
            }
            MethodKind::Write => {
                writes_completed += 1;
                write_samples.push(op.latency());
            }
        }
    }
    let mut traffic: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut messages = 0u64;
    let mut bytes = 0u64;
    for (kind, count) in &metrics.traffic {
        let before = metrics_before.1.get(kind).copied().unwrap_or_default();
        let delta_count = count.count - before.count;
        let delta_bytes = count.bytes - before.bytes;
        if delta_count > 0 {
            traffic.insert(kind, (delta_count, delta_bytes));
            messages += delta_count;
            bytes += delta_bytes;
        }
    }
    drop(metrics);

    let history = rt.history();
    let history = history.lock();
    let staleness_summary = staleness(&history);
    drop(history);

    WorkloadOutcome {
        reads_issued,
        reads_completed,
        writes_issued,
        writes_completed,
        read_latency: LatencySummary::of(read_samples),
        write_latency: LatencySummary::of(write_samples),
        staleness: staleness_summary,
        messages,
        bytes,
        traffic,
        elapsed: clock.now(),
    }
}

/// Runs `spec` against any runtime with bound reader and writer
/// handles, choosing the regime the backend supports: concurrent
/// open-loop threads over its [`EnginePort`] when it has one, or the
/// interleaved virtual-time schedule when it does not (the simulator).
///
/// Call [`GlobeRuntime::start`] first on backends with background
/// machinery — the port issues into live event loops.
pub fn run_engine<R: GlobeRuntime>(
    rt: &mut R,
    readers: &[ClientHandle],
    writers: &[ClientHandle],
    spec: &WorkloadSpec,
) -> EngineReport {
    match rt.engine_port() {
        Some(port) => concurrent_drive(&*port, readers, writers, spec),
        None => {
            let outcome =
                interleaved_outcome(rt, readers, writers, spec, WorkloadClock::virtual_clock());
            EngineReport {
                mode: EngineMode::Interleaved,
                reads_issued: outcome.reads_issued,
                reads_completed: outcome.reads_completed,
                writes_issued: outcome.writes_issued,
                writes_completed: outcome.writes_completed,
                issue_errors: 0,
                abandoned: (outcome.reads_issued + outcome.writes_issued)
                    .saturating_sub(outcome.reads_completed + outcome.writes_completed),
                read_latency: outcome.read_latency,
                write_latency: outcome.write_latency,
                elapsed: outcome.elapsed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_sink_merges_and_summarizes() {
        let mut a = SampleSink::with_capacity(4);
        let mut b = SampleSink::default();
        a.record(Duration::from_millis(1));
        a.record(Duration::from_millis(3));
        b.record(Duration::from_millis(2));
        assert_eq!(a.len(), 2);
        assert!(!b.is_empty());
        a.merge(b);
        assert_eq!(a.len(), 3);
        let s = a.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, Duration::from_millis(3));
        assert_eq!(s.p50, Duration::from_millis(2));
    }

    #[test]
    fn virtual_clock_tracks_cursor() {
        let clock = WorkloadClock::virtual_clock();
        assert_eq!(clock.now(), Duration::ZERO);
        // advance_to needs a runtime; cursor arithmetic is covered by
        // the engine-on-sim tests in the driver and matrix suites.
        let wall = WorkloadClock::wall_clock();
        assert!(wall.now() < Duration::from_secs(1));
    }
}
