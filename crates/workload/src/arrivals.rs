//! Arrival processes generating operation schedules in virtual time.

use std::time::Duration;

use rand::Rng;

/// How a client's operations are spaced in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Fixed spacing (a Web master's periodic edits).
    Fixed(Duration),
    /// Poisson process with the given rate (events per second).
    Poisson(f64),
}

impl Arrival {
    /// Draws the next inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if a Poisson rate is not strictly positive.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            Arrival::Fixed(d) => d,
            Arrival::Poisson(rate) => {
                assert!(rate > 0.0, "poisson rate must be positive");
                let u: f64 = rng.random::<f64>().max(1e-12);
                Duration::from_secs_f64(-u.ln() / rate)
            }
        }
    }

    /// Generates arrival instants (as offsets) within `horizon`.
    pub fn schedule<R: Rng + ?Sized>(&self, rng: &mut R, horizon: Duration) -> Vec<Duration> {
        let mut out = Vec::new();
        let mut t = self.next_gap(rng);
        while t < horizon {
            out.push(t);
            t += self.next_gap(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn fixed_schedule_is_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let sched =
            Arrival::Fixed(Duration::from_secs(2)).schedule(&mut rng, Duration::from_secs(10));
        assert_eq!(
            sched,
            vec![
                Duration::from_secs(2),
                Duration::from_secs(4),
                Duration::from_secs(6),
                Duration::from_secs(8),
            ]
        );
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let sched = Arrival::Poisson(50.0).schedule(&mut rng, Duration::from_secs(60));
        let n = sched.len() as f64;
        let expected = 50.0 * 60.0;
        assert!((n - expected).abs() < expected * 0.1, "n = {n}");
        assert!(sched.windows(2).all(|w| w[0] < w[1]), "must be sorted");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a =
            Arrival::Poisson(10.0).schedule(&mut StdRng::seed_from_u64(3), Duration::from_secs(10));
        let b =
            Arrival::Poisson(10.0).schedule(&mut StdRng::seed_from_u64(3), Duration::from_secs(10));
        assert_eq!(a, b);
    }
}
