//! Zipf-distributed popularity, the classic model for Web page access.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with skew `theta`.
///
/// `theta = 0` is uniform; `theta ≈ 0.8–1.0` matches observed Web
/// popularity. Sampling is O(log n) via binary search over the
/// precomputed CDF.
///
/// # Examples
///
/// ```
/// use globe_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(100, 0.9);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(theta >= 0.0, "zipf skew must be non-negative");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            let w = 1.0 / (rank as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        let cdf = weights.into_iter().map(|w| w / total).collect();
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; `new` rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=1 the top 10 of 100 items carry ~56% of mass.
        assert!(head > total / 2, "head share too small: {head}/{total}");
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
