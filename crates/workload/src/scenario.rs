//! Scenario library: the document classes motivating the paper (§1),
//! each with its own replication policy and deployment shape.

use std::time::Duration;

use globe_coherence::{ClientModel, StoreClass};
use globe_core::{
    BindOptions, ClientHandle, GlobeSim, ObjectSpec, ReplicationPolicy, RuntimeError,
};
use globe_naming::ObjectId;
use globe_net::{NodeId, RegionId, Topology};
use globe_web::WebSemantics;

use crate::{Arrival, WorkloadSpec};

/// Shape of the simulated internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyKind {
    /// Single-site LAN.
    Lan,
    /// Two regions with WAN latency between them.
    #[default]
    Wan,
}

/// Declarative description of a deployment to build.
#[derive(Debug, Clone)]
pub struct SetupSpec {
    /// Object name to register.
    pub name: String,
    /// Network shape.
    pub topology: TopologyKind,
    /// Object-initiated mirrors (placed round-robin across regions).
    pub mirrors: usize,
    /// Client-initiated caches (placed round-robin across regions).
    pub caches: usize,
    /// Reader clients, bound round-robin to caches/mirrors.
    pub readers: usize,
    /// Writer clients (bound at the home region).
    pub writers: usize,
    /// The object's replication policy.
    pub policy: ReplicationPolicy,
    /// Session guards for every reader.
    pub reader_guards: Vec<ClientModel>,
    /// Session guards for every writer.
    pub writer_guards: Vec<ClientModel>,
    /// Route writes through each writer's bound store instead of the
    /// home store, when the coherence model allows local write ingress.
    pub local_writes: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl SetupSpec {
    /// A minimal server-plus-one-cache setup with the given policy.
    pub fn simple(policy: ReplicationPolicy, seed: u64) -> Self {
        SetupSpec {
            name: "/object".to_string(),
            topology: TopologyKind::Wan,
            mirrors: 0,
            caches: 1,
            readers: 2,
            writers: 1,
            policy,
            reader_guards: Vec::new(),
            writer_guards: Vec::new(),
            local_writes: false,
            seed,
        }
    }
}

/// A built simulation with bound clients, ready for a workload run.
pub struct ScenarioInstance {
    /// Human-readable scenario name.
    pub name: String,
    /// The simulation.
    pub sim: GlobeSim,
    /// The Web object under test.
    pub object: ObjectId,
    /// The home (permanent) store node.
    pub server: NodeId,
    /// Mirror nodes.
    pub mirrors: Vec<NodeId>,
    /// Cache nodes.
    pub caches: Vec<NodeId>,
    /// Bound readers.
    pub readers: Vec<ClientHandle>,
    /// Bound writers.
    pub writers: Vec<ClientHandle>,
}

/// Builds a deployment per `spec`.
///
/// # Errors
///
/// Returns a [`RuntimeError`] if object creation or binding fails.
pub fn build(spec: &SetupSpec) -> Result<ScenarioInstance, RuntimeError> {
    let topology = match spec.topology {
        TopologyKind::Lan => Topology::lan(),
        TopologyKind::Wan => Topology::wan(),
    };
    let mut sim = GlobeSim::new(topology, spec.seed);
    let regions = [RegionId::new(0), RegionId::new(1)];
    let server = sim.add_node_in(regions[0]);
    let mirrors: Vec<NodeId> = (0..spec.mirrors)
        .map(|i| sim.add_node_in(regions[(i + 1) % regions.len()]))
        .collect();
    let caches: Vec<NodeId> = (0..spec.caches)
        .map(|i| sim.add_node_in(regions[i % regions.len()]))
        .collect();

    let mut placement = vec![(server, StoreClass::Permanent)];
    placement.extend(mirrors.iter().map(|&n| (n, StoreClass::ObjectInitiated)));
    placement.extend(caches.iter().map(|&n| (n, StoreClass::ClientInitiated)));
    let object = ObjectSpec::new(&spec.name)
        .policy(spec.policy.clone())
        .semantics(WebSemantics::new)
        .stores(&placement)
        .create(&mut sim)?;

    // Readers bind round-robin across the non-permanent replicas (or the
    // server if there are none).
    let read_targets: Vec<NodeId> = if caches.is_empty() && mirrors.is_empty() {
        vec![server]
    } else {
        caches.iter().chain(mirrors.iter()).copied().collect()
    };
    let mut readers = Vec::with_capacity(spec.readers);
    for i in 0..spec.readers {
        let target = read_targets[i % read_targets.len()];
        let mut opts = BindOptions::new().read_node(target);
        for &g in &spec.reader_guards {
            opts = opts.guard(g);
        }
        readers.push(sim.bind(object, target, opts)?);
    }
    // Writers bind round-robin across the read targets (the first writer
    // at the first target, like the master reading through its own
    // cache). With `local_writes`, their writes enter at the bound store.
    let mut writers = Vec::with_capacity(spec.writers);
    for i in 0..spec.writers {
        let target = read_targets[i % read_targets.len()];
        let mut opts = BindOptions::new().read_node(target);
        if spec.local_writes {
            opts = opts.write_local();
        }
        for &g in &spec.writer_guards {
            opts = opts.guard(g);
        }
        writers.push(sim.bind(object, target, opts)?);
    }

    Ok(ScenarioInstance {
        name: spec.name.clone(),
        sim,
        object,
        server,
        mirrors,
        caches,
        readers,
        writers,
    })
}

/// The §4 conference home page: PRAM + RYW master, periodic push of
/// partial updates, user caches.
pub fn conference_page(seed: u64) -> Result<(ScenarioInstance, WorkloadSpec), RuntimeError> {
    let setup = SetupSpec {
        name: "/conf/icdcs98".to_string(),
        topology: TopologyKind::Wan,
        mirrors: 0,
        caches: 2,
        readers: 6,
        writers: 1,
        policy: ReplicationPolicy::conference_page(),
        reader_guards: vec![],
        writer_guards: vec![ClientModel::ReadYourWrites],
        local_writes: false,
        seed,
    };
    let spec = WorkloadSpec {
        duration: Duration::from_secs(120),
        drain: Duration::from_secs(10),
        pages: 6,
        zipf_theta: 0.6,
        page_bytes: 256,
        incremental: true,
        reader_arrival: Arrival::Poisson(0.5),
        writer_arrival: Arrival::Fixed(Duration::from_secs(7)),
        seed,
    };
    Ok((build(&setup)?, spec))
}

/// §1's personal home page: one server, browser caches, eventual pull.
pub fn personal_home_page(seed: u64) -> Result<(ScenarioInstance, WorkloadSpec), RuntimeError> {
    let setup = SetupSpec {
        name: "/home/alice".to_string(),
        topology: TopologyKind::Wan,
        mirrors: 0,
        caches: 1,
        readers: 2,
        writers: 1,
        policy: ReplicationPolicy::personal_home_page(),
        reader_guards: vec![],
        writer_guards: vec![],
        local_writes: false,
        seed,
    };
    let spec = WorkloadSpec {
        duration: Duration::from_secs(120),
        pages: 3,
        zipf_theta: 0.2,
        page_bytes: 1024,
        incremental: false,
        reader_arrival: Arrival::Poisson(0.1),
        writer_arrival: Arrival::Poisson(0.02),
        seed,
        ..WorkloadSpec::default()
    };
    Ok((build(&setup)?, spec))
}

/// §1's popular-event page: mirrors in every region, many readers.
pub fn popular_event(seed: u64) -> Result<(ScenarioInstance, WorkloadSpec), RuntimeError> {
    let setup = SetupSpec {
        name: "/events/worldcup".to_string(),
        topology: TopologyKind::Wan,
        mirrors: 2,
        caches: 2,
        readers: 12,
        writers: 1,
        policy: ReplicationPolicy::magazine(),
        reader_guards: vec![],
        writer_guards: vec![],
        local_writes: false,
        seed,
    };
    let spec = WorkloadSpec {
        duration: Duration::from_secs(60),
        pages: 10,
        zipf_theta: 1.0,
        page_bytes: 512,
        incremental: false,
        reader_arrival: Arrival::Poisson(2.0),
        writer_arrival: Arrival::Poisson(0.2),
        seed,
        ..WorkloadSpec::default()
    };
    Ok((build(&setup)?, spec))
}

/// §3.2.1's causal newsgroup.
pub fn news_forum(seed: u64) -> Result<(ScenarioInstance, WorkloadSpec), RuntimeError> {
    let setup = SetupSpec {
        name: "/forum/comp.dist".to_string(),
        topology: TopologyKind::Wan,
        mirrors: 1,
        caches: 2,
        readers: 6,
        writers: 3,
        policy: ReplicationPolicy::news_forum(),
        reader_guards: vec![ClientModel::MonotonicReads],
        writer_guards: vec![ClientModel::WritesFollowReads],
        local_writes: false,
        seed,
    };
    let spec = WorkloadSpec {
        duration: Duration::from_secs(60),
        pages: 12,
        zipf_theta: 0.7,
        page_bytes: 200,
        incremental: true,
        reader_arrival: Arrival::Poisson(1.0),
        writer_arrival: Arrival::Poisson(0.3),
        seed,
        ..WorkloadSpec::default()
    };
    Ok((build(&setup)?, spec))
}

/// §3.2.2's groupware white-board: sequential coherence, multiple
/// writers, strong coherence at every layer.
pub fn whiteboard(seed: u64) -> Result<(ScenarioInstance, WorkloadSpec), RuntimeError> {
    let setup = SetupSpec {
        name: "/apps/whiteboard".to_string(),
        topology: TopologyKind::Lan,
        mirrors: 0,
        caches: 3,
        readers: 3,
        writers: 3,
        policy: ReplicationPolicy::whiteboard(),
        reader_guards: vec![],
        writer_guards: vec![],
        local_writes: false,
        seed,
    };
    let spec = WorkloadSpec {
        duration: Duration::from_secs(30),
        pages: 1,
        zipf_theta: 0.0,
        page_bytes: 64,
        incremental: true,
        reader_arrival: Arrival::Poisson(2.0),
        writer_arrival: Arrival::Poisson(1.0),
        seed,
        ..WorkloadSpec::default()
    };
    Ok((build(&setup)?, spec))
}

#[cfg(test)]
mod tests {
    use crate::run_workload;

    use super::*;

    #[test]
    fn build_produces_expected_shape() {
        let setup = SetupSpec {
            mirrors: 2,
            caches: 3,
            readers: 5,
            writers: 2,
            ..SetupSpec::simple(ReplicationPolicy::magazine(), 4)
        };
        let instance = build(&setup).unwrap();
        assert_eq!(instance.mirrors.len(), 2);
        assert_eq!(instance.caches.len(), 3);
        assert_eq!(instance.readers.len(), 5);
        assert_eq!(instance.writers.len(), 2);
        assert_eq!(instance.sim.stores_of(instance.object).len(), 6);
    }

    #[test]
    fn conference_scenario_runs_clean() {
        let (mut instance, spec) = conference_page(11).unwrap();
        let spec = WorkloadSpec {
            duration: Duration::from_secs(30),
            ..spec
        };
        let outcome = run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &spec,
        );
        assert!(outcome.writes_issued > 0);
        assert_eq!(outcome.writes_completed, outcome.writes_issued);
        // PRAM order must hold across the conference run.
        let history = instance.sim.history();
        let history = history.lock();
        globe_coherence::check::check_pram(&history).unwrap();
    }

    #[test]
    fn whiteboard_scenario_is_sequential() {
        let (mut instance, spec) = whiteboard(12).unwrap();
        let spec = WorkloadSpec {
            duration: Duration::from_secs(10),
            ..spec
        };
        let _ = run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &spec,
        );
        let history = instance.sim.history();
        let history = history.lock();
        globe_coherence::check::check_sequential(&history).unwrap();
    }
}
