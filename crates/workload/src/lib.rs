//! Workload generation and measurement for Globe Web objects.
//!
//! The paper motivates per-object strategies with a gallery of document
//! classes (§1): personal home pages, popular event pages, periodically
//! updated magazines, Web forums, and shared white-boards. This crate
//! turns each into a runnable scenario — a deployment shape plus a
//! stochastic workload — and measures what the paper argues about:
//! latency, staleness, and coherence traffic.
//!
//! # Examples
//!
//! Deployments are described with the [`ObjectSpec`] builder and clients
//! are bound to [`ClientHandle`]s; [`run_workload`] then schedules their
//! operations in virtual time on the simulator, and the backend-generic
//! [`engine`] module drives the same workloads on any runtime — open-loop
//! concurrent threads in wall time on TCP/shard, interleaved virtual-time
//! schedules on sim — behind the [`WorkloadClock`] abstraction.
//!
//! ```
//! use globe_coherence::StoreClass;
//! use globe_core::{BindOptions, GlobeSim, ObjectSpec, ReplicationPolicy};
//! use globe_net::Topology;
//! use globe_web::WebSemantics;
//! use globe_workload::{run_workload, WorkloadSpec};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = GlobeSim::new(Topology::wan(), 42);
//! let server = sim.add_node();
//! let cache = sim.add_node();
//! let object = ObjectSpec::new("/conf/icdcs98")
//!     .policy(ReplicationPolicy::conference_page())
//!     .semantics(WebSemantics::new)
//!     .store(server, StoreClass::Permanent)
//!     .store(cache, StoreClass::ClientInitiated)
//!     .create(&mut sim)?;
//! let writer = sim.bind(object, server, BindOptions::new().read_node(server))?;
//! let reader = sim.bind(object, cache, BindOptions::new().read_node(cache))?;
//! let spec = WorkloadSpec { duration: Duration::from_secs(10), ..WorkloadSpec::default() };
//! let outcome = run_workload(&mut sim, &[reader], &[writer], &spec);
//! assert!(outcome.reads_issued > 0);
//! # Ok(())
//! # }
//! ```
//!
//! [`ObjectSpec`]: globe_core::ObjectSpec
//! [`ClientHandle`]: globe_core::ClientHandle

#![warn(missing_docs)]

mod arrivals;
mod driver;
pub mod engine;
pub mod scenario;
mod stats;
mod zipf;

pub use arrivals::Arrival;
pub use driver::{run_workload, smoke_reads, WorkloadOutcome, WorkloadSpec};
pub use engine::{run_engine, EngineMode, EngineReport, SampleSink, WorkloadClock};
pub use scenario::{build, ScenarioInstance, SetupSpec, TopologyKind};
pub use stats::{staleness, LatencySummary, StalenessSummary};
pub use zipf::Zipf;
