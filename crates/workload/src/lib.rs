//! Workload generation and measurement for Globe Web objects.
//!
//! The paper motivates per-object strategies with a gallery of document
//! classes (§1): personal home pages, popular event pages, periodically
//! updated magazines, Web forums, and shared white-boards. This crate
//! turns each into a runnable scenario — a deployment shape plus a
//! stochastic workload — and measures what the paper argues about:
//! latency, staleness, and coherence traffic.
//!
//! # Examples
//!
//! ```
//! use globe_workload::{run_workload, scenario, WorkloadSpec};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (mut instance, spec) = scenario::conference_page(42)?;
//! let spec = WorkloadSpec { duration: Duration::from_secs(10), ..spec };
//! let outcome = run_workload(&mut instance.sim, &instance.readers, &instance.writers, &spec);
//! assert!(outcome.reads_issued > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arrivals;
mod driver;
pub mod scenario;
mod stats;
mod zipf;

pub use arrivals::Arrival;
pub use driver::{run_workload, smoke_reads, WorkloadOutcome, WorkloadSpec};
pub use scenario::{build, ScenarioInstance, SetupSpec, TopologyKind};
pub use stats::{staleness, LatencySummary, StalenessSummary};
pub use zipf::Zipf;
