//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `bytes` API it actually
//! uses: a cheaply cloneable immutable byte buffer ([`Bytes`]) and the
//! big-endian cursor traits ([`Buf`], [`BufMut`]). Semantics match the
//! upstream crate for the implemented subset (panics on underflow,
//! network byte order for the fixed-width accessors).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from_vec(slice.to_vec())
    }

    /// Copies an arbitrary slice into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from_vec(slice.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_vec(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(s: Box<[u8]>) -> Self {
        Bytes::from_vec(s.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

/// Read cursor over a contiguous byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, panicking on underflow.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`, panicking on underflow.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`, panicking on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`, panicking on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`, panicking on underflow.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copies `dst.len()` bytes out, panicking on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies `len` bytes into a fresh [`Bytes`], panicking on underflow.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write cursor producing big-endian fixed-width values.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
    }

    #[test]
    fn buf_cursor_semantics() {
        let data = [0u8, 1, 0, 2, 42];
        let mut buf = &data[..];
        assert_eq!(buf.get_u16(), 1);
        assert_eq!(buf.get_u16(), 2);
        assert_eq!(buf.get_u8(), 42);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn bufmut_is_big_endian() {
        let mut v = Vec::new();
        v.put_u16(0x0102);
        v.put_u32(0x03040506);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 6]);
    }
}
