//! Minimal vendored stand-in for `criterion` (offline build).
//!
//! Benchmarks compile and run with the same source as upstream
//! criterion, but the harness is a simple timed loop printing
//! nanoseconds per iteration. Under `cargo test` (which passes
//! `--test` to `harness = false` bench binaries) each benchmark runs a
//! single iteration as a smoke check.

pub use std::hint::black_box;

use std::time::Instant;

/// How setup cost is amortized in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    nanos: f64,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the reported figure.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.nanos = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// The benchmark manager: registers and runs benchmark functions.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench binaries are run with `--test`:
        // keep to a single iteration so the suite stays fast.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if smoke { 1 } else { 50 },
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its ns/iter.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.iters,
            nanos: 0.0,
        };
        f(&mut bencher);
        println!("bench {id:<40} {:>12.1} ns/iter", bencher.nanos);
        self
    }

    /// Opens a named group; its benchmarks print as `group/id`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the stub harness keeps its
    /// own fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
