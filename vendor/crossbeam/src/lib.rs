//! Minimal vendored stand-in for `crossbeam`, exposing only the
//! unbounded MPSC channel surface this workspace uses, backed by
//! `std::sync::mpsc`.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns immediately with a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            let a = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            let b = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(a + b, 42);
            drop(tx);
        }
    }
}
