//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free `lock()` / `read()` / `write()` API surface
//! this workspace uses. Poisoned std locks are recovered transparently,
//! matching parking_lot's behavior of not poisoning at all.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Waits on `guard` for at most `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait_for(&mut guard, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*guard);
    }
}
