//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max_exclusive {
            self.min
        } else {
            rng.in_range(self.min, self.max_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// See [`vec()`](function@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys shrink the map; retry a bounded number of
        // times to respect the minimum size when possible.
        for _ in 0..target.saturating_mul(8).max(8) {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// A strategy for `BTreeMap`s with a size in `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        for _ in 0..target.saturating_mul(8).max(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// A strategy for `BTreeSet`s with a size in `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
