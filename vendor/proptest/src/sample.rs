//! Sampling helpers: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An opaque index resolvable against any non-empty length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    pub(crate) fn new(raw: usize) -> Self {
        Index { raw }
    }

    /// Resolves against a collection of `len` elements (`len` > 0).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        self.raw % len
    }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len())].clone()
    }
}

/// Uniformly picks one of `choices` (must be non-empty).
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select over no choices");
    Select { choices }
}
