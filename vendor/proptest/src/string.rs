//! String-pattern strategies: `&'static str` as a strategy.
//!
//! Supports the pattern subset this workspace uses — a single `.` or
//! `[character class]` unit followed by a `{min,max}` repetition, e.g.
//! `".{0,64}"` or `"[a-zA-Z0-9._-]{1,12}"`. Unrecognized patterns are
//! generated as their literal text.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A sprinkle of multi-byte characters so `.` exercises UTF-8 paths.
const WIDE_CHARS: &[char] = &['é', 'ß', 'Ω', '☃', '語', '𝔊'];

/// A printable-biased arbitrary character.
pub(crate) fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        0 => WIDE_CHARS[rng.below(WIDE_CHARS.len())],
        _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
    }
}

#[derive(Debug, Clone)]
enum Unit {
    /// `.` — any printable char (plus occasional multi-byte ones).
    AnyChar,
    /// `[...]` — one of an explicit set.
    Class(Vec<char>),
    /// A pattern we do not understand, reproduced literally.
    Literal(String),
}

fn parse_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut set = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            let mut c = lo;
            while c <= hi {
                set.push(c);
                c = char::from_u32(c as u32 + 1).unwrap_or(hi);
                if c as u32 == hi as u32 + 1 {
                    break;
                }
            }
            // Make sure `hi` itself landed in the set.
            if set.last() != Some(&hi) {
                set.push(hi);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    set
}

fn parse_pattern(pattern: &str) -> (Unit, usize, usize) {
    let (unit, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (Unit::AnyChar, rest)
    } else if let Some(after) = pattern.strip_prefix('[') {
        match after.find(']') {
            Some(end) => (Unit::Class(parse_class(&after[..end])), &after[end + 1..]),
            None => return (Unit::Literal(pattern.to_string()), 1, 1),
        }
    } else {
        return (Unit::Literal(pattern.to_string()), 1, 1);
    };
    let Some(spec) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        // A bare unit means exactly one repetition.
        return if rest.is_empty() {
            (unit, 1, 1)
        } else {
            (Unit::Literal(pattern.to_string()), 1, 1)
        };
    };
    let (min, max) = match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or(0),
            hi.trim().parse().unwrap_or(8),
        ),
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    };
    (unit, min, max)
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (unit, min, max) = parse_pattern(self);
        match unit {
            Unit::Literal(text) => text,
            Unit::AnyChar => {
                let len = rng.in_range(min, max + 1);
                (0..len).map(|_| arbitrary_char(rng)).collect()
            }
            Unit::Class(set) => {
                let len = rng.in_range(min, max + 1);
                (0..len).map(|_| set[rng.below(set.len())]).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let set = parse_class("a-zA-Z0-9._-");
        assert!(set.contains(&'a') && set.contains(&'z'));
        assert!(set.contains(&'A') && set.contains(&'9'));
        assert!(set.contains(&'.') && set.contains(&'_') && set.contains(&'-'));
        assert!(!set.contains(&'['));
    }

    #[test]
    fn generated_lengths_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            let t = ".{0,4}".generate(&mut rng);
            assert!(t.chars().count() <= 4, "{t:?}");
        }
    }
}
