//! Minimal vendored stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_filter`,
//! range and string-pattern strategies, tuples, `Just`, unions
//! (`prop_oneof!`), collections, `sample::select` / `sample::Index`,
//! `option::of`, and the `proptest!` / `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is no shrinking —
//! a failure reports the generated inputs via `Debug` instead.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod sample;

pub mod collection;

pub mod option;

pub mod string;

/// The glob import used by every property test.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    use crate::strategy::Strategy;
    use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};

    /// Drives one property test: `cases` iterations of generate + run.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Deterministic seed per test name so failures reproduce.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng::new(seed);
        for case_index in 0..config.cases {
            if let Err(e) = case(&mut rng) {
                panic!("property '{name}' failed at case {case_index}: {e}");
            }
        }
    }

    /// Generates one value, also used by the `proptest!` expansion.
    pub fn generate<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
        strategy.generate(rng)
    }
}

/// Declares property tests.
///
/// Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..10, ref_name in ".{0,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($config:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($config:expr) } => {};
    { ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::__rt::run_cases(stringify!($name), &config, |rng| {
                $(let $argpat = $crate::__rt::generate(&($strat), rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                result
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*))));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*))));
        }
    }};
}

/// Uniformly chooses among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
