//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
