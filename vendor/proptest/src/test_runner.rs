//! Test-runner configuration, failure type, and deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold, with an explanation.
    Fail(String),
}

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator feeding all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `usize` in `lo..hi` (half-open, non-empty).
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }
}
