//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::string::arbitrary_char(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
