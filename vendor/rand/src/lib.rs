//! Minimal vendored stand-in for the `rand` crate (0.9-style API).
//!
//! Supplies a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and the small [`Rng`] surface this workspace uses:
//! `random::<T>()` and `random_range(..)`. Determinism for a given seed
//! is part of the contract — the network simulator and workload
//! generators rely on reproducible streams.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a random stream.
pub trait Random {
    /// Draws one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($ty:ty),*) => {$(
        impl Random for $ty {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges drawable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (u128::random_from(rng) % span) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return u128::random_from(rng) as $ty;
                }
                start + (u128::random_from(rng) % span) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing random-draw methods, auto-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u32..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.random_range(5usize..=5), 5);
    }
}
