//! A Web forum under causal coherence: "a participant's reaction makes
//! sense only if the audience has received the message that triggered
//! the reaction" (§3.2.1). Writes carry dependency vectors; every store
//! applies article before reaction, while concurrent posts may
//! interleave freely.
//!
//! ```text
//! cargo run --example news_forum
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = GlobeSim::new(Topology::wan(), 11);
    let server = sim.add_node_in(RegionId::new(0));
    let mirror_eu = sim.add_node_in(RegionId::new(1));
    let poster_site = sim.add_node_in(RegionId::new(0));
    let reactor_site = sim.add_node_in(RegionId::new(1));

    let policy = ReplicationPolicy::news_forum();
    println!("Forum policy:\n{policy}\n");
    let object = ObjectSpec::new("/forum/comp.dist")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(mirror_eu, StoreClass::ObjectInitiated)
        .create(&mut sim)?;

    let author = sim.bind(object, poster_site, BindOptions::new().read_node(server))?;
    // The reactor reads the EU mirror and additionally demands
    // Writes-Follow-Reads, so their replies can never appear before the
    // article anywhere.
    let reactor = sim.bind(
        object,
        reactor_site,
        BindOptions::new()
            .read_node(mirror_eu)
            .guard(ClientModel::WritesFollowReads),
    )?;

    WebClient::attach(&mut sim, author).put_page(
        "thread-42",
        Page::html("<article>Globe objects announced</article>"),
    )?;
    println!("[{}] author posted the article", sim.now());

    sim.run_for(Duration::from_millis(500));
    {
        let mut r = WebClient::attach(&mut sim, reactor);
        let article = r.get_page("thread-42")?.expect("article propagated");
        println!(
            "reactor read the article from the EU mirror ({} bytes)",
            article.body.len()
        );

        r.patch_page("thread-42", b"<reply>Congratulations!</reply>")?;
    }
    println!("[{}] reactor replied", sim.now());

    sim.run_for(Duration::from_secs(2));
    let thread = WebClient::attach(&mut sim, author)
        .get_page("thread-42")?
        .expect("thread exists");
    println!(
        "[{}] author sees the full thread: {:?}",
        sim.now(),
        std::str::from_utf8(&thread.body)?
    );
    assert!(thread.body.starts_with(b"<article>"));
    assert!(thread.body.ends_with(b"</reply>"));

    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_causal(&history)?;
    globe_coherence::check::check_writes_follow_reads(&history, reactor.client)?;
    println!("\nCausal and Writes-Follow-Reads checkers passed.");
    Ok(())
}
