//! The paper's §4 worked example, narrated: a conference home page as a
//! distributed shared object combining object-based PRAM with the Web
//! master's client-based Read-Your-Writes (Figs. 3–4, Table 2).
//!
//! ```text
//! cargo run --example conference_page
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = GlobeSim::new(Topology::wan(), 1998);

    // Fig. 3: a Web server (permanent store), the master's cache M, and
    // the users' cache U. The master and users are clients.
    let web_server = sim.add_node_in(RegionId::new(0));
    let cache_m = sim.add_node_in(RegionId::new(0));
    let cache_u = sim.add_node_in(RegionId::new(1));

    // Table 2, verbatim.
    let mut policy = ReplicationPolicy::conference_page();
    policy.lazy_period = Duration::from_secs(5); // periodic push, 5 s
    println!("The conference page's replication strategy (Table 2):\n{policy}\n");

    let object = ObjectSpec::new("/conf/icdcs98/home")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(web_server, StoreClass::Permanent)
        .store(cache_m, StoreClass::ClientInitiated)
        .store(cache_u, StoreClass::ClientInitiated)
        .create(&mut sim)?;

    // Client M: the Web master. Writes go directly to the Web server;
    // reads come from cache M; RYW is enforced on top of PRAM.
    let master = sim.bind(
        object,
        cache_m,
        BindOptions::new()
            .read_node(cache_m)
            .guard(ClientModel::ReadYourWrites),
    )?;
    // Client U: an interested participant reading through cache U.
    let participant = sim.bind(object, cache_u, BindOptions::new().read_node(cache_u))?;

    // The master incrementally updates the page as information arrives.
    let seen = {
        let mut m = WebClient::attach(&mut sim, master);
        println!("master: create program.html");
        m.put_page("program.html", Page::html("<h2>Program</h2>"))?;
        println!("master: append keynote announcement");
        m.patch_page("program.html", b"<p>Keynote: scaling the Web</p>")?;

        // The master immediately checks the update — through cache M,
        // which has NOT yet received the periodic push. RYW makes the
        // cache demand the missing writes from the server
        // (client-outdate = demand).
        m.get_page("program.html")?.expect("page exists")
    };
    println!(
        "[{}] master: read own page through cache M -> {} bytes (RYW satisfied)",
        sim.now(),
        seen.body.len()
    );
    assert!(seen.body.ends_with(b"</p>"), "master must see own writes");

    // A participant reads right away: cache U is still stale (PRAM makes
    // no recency promise), so the page may be missing — that is the
    // paper's point about weak models at caches.
    match WebClient::attach(&mut sim, participant).get_page("program.html")? {
        Some(page) => println!(
            "[{}] participant: read {} bytes (already pushed)",
            sim.now(),
            page.body.len()
        ),
        None => println!(
            "[{}] participant: page not at cache U yet (no push in first 5 s — expected)",
            sim.now()
        ),
    }

    // After the periodic push, everyone converges.
    sim.run_for(Duration::from_secs(6));
    let page = WebClient::attach(&mut sim, participant)
        .get_page("program.html")?
        .expect("pushed by now");
    println!(
        "[{}] participant: after the periodic push -> {:?}",
        sim.now(),
        std::str::from_utf8(&page.body)?
    );

    // Verify the coherence story formally.
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history)?;
    globe_coherence::check::check_read_your_writes(&history, master.client)?;
    globe_coherence::check::check_eventual(&history)?;
    drop(history);

    // And show the Fig. 4 message kinds that made it happen.
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    println!("\nCoherence traffic (Fig. 4 message kinds):");
    for (kind, count) in &metrics.traffic {
        println!(
            "  {kind:<14} {:>4} msgs {:>8} bytes",
            count.count, count.bytes
        );
    }
    Ok(())
}
