//! Geographical push-caching (the paper's object-initiated stores, and
//! its nod to Gwertzman & Seltzer): a popular event page installs a
//! mirror near its readers *at run time*, which synchronizes itself and
//! then receives pushes like any other store.
//!
//! ```text
//! cargo run --example mirror_push
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = GlobeSim::new(Topology::wan(), 64);
    let server_us = sim.add_node_in(RegionId::new(0));
    let reader_eu_site = sim.add_node_in(RegionId::new(1));

    let object = ObjectSpec::new("/events/worldcup")
        .policy(ReplicationPolicy::magazine()) // FIFO, lazy push
        .semantics(WebSemantics::new)
        .store(server_us, StoreClass::Permanent)
        .create(&mut sim)?;

    let editor = sim.bind(object, server_us, BindOptions::new().read_node(server_us))?;
    let eu_reader = sim.bind(
        object,
        reader_eu_site,
        BindOptions::new().read_node(server_us), // nothing closer yet
    )?;

    WebClient::attach(&mut sim, editor).put_page("scores.html", Page::html("0 - 0"))?;
    sim.run_for(Duration::from_secs(1));

    // Phase 1: the EU reader crosses the ocean for every read.
    {
        let mut reader = WebClient::attach(&mut sim, eu_reader);
        for _ in 0..10 {
            reader.get_page("scores.html")?;
        }
    }
    let metrics = sim.metrics();
    let trans_atlantic = metrics.lock().mean_latency(MethodKind::Read).unwrap();
    println!("reads from the US server: mean latency {trans_atlantic:?}");

    // Phase 2: the object installs a mirror in the EU (an
    // object-initiated store), which pulls the current state on start.
    let mirror_eu = sim.add_node_in(RegionId::new(1));
    sim.add_store(
        object,
        mirror_eu,
        StoreClass::ObjectInitiated,
        Box::new(WebSemantics::new()),
    )?;
    sim.run_for(Duration::from_secs(2)); // initial sync
    sim.rebind_reads(&eu_reader, mirror_eu)?;

    let ops_before = sim.metrics().lock().ops.len();
    {
        let mut reader = WebClient::attach(&mut sim, eu_reader);
        for _ in 0..10 {
            reader.get_page("scores.html")?;
        }
    }
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let local: Vec<Duration> = metrics.ops[ops_before..]
        .iter()
        .map(|op| op.latency())
        .collect();
    let local_mean = local.iter().sum::<Duration>() / local.len() as u32;
    drop(metrics);
    println!("reads from the EU mirror:  mean latency {local_mean:?}");
    assert!(
        local_mean < trans_atlantic / 4,
        "the mirror should cut read latency dramatically"
    );

    // Updates keep flowing to the mirror via the object's push policy.
    WebClient::attach(&mut sim, editor).put_page("scores.html", Page::html("1 - 0 (89')"))?;
    sim.run_for(Duration::from_secs(6)); // one lazy period
    let latest = WebClient::attach(&mut sim, eu_reader)
        .get_page("scores.html")?
        .expect("scores page");
    println!(
        "after the push, the EU mirror serves: {:?}",
        std::str::from_utf8(&latest.body)?
    );
    assert_eq!(&latest.body[..], b"1 - 0 (89')");
    Ok(())
}
