//! The paper's PRAM motivation (§3.2.1): "Consider, for example, a shared
//! bibliographic database. A client may decide to add a new record to the
//! database, and later to update one of its fields. The PRAM coherence
//! model prescribes that the field update at a store is delayed until the
//! record has been added to that store's replica."
//!
//! This example makes the delay visible: the field update overtakes the
//! record insertion on a jittery non-FIFO network, and the receiving
//! store buffers it until the insertion arrives.
//!
//! ```text
//! cargo run --example bibliography
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A nasty network: datagram-style, heavily jittered, so the two
    // writes can arrive out of order at the replica.
    let link = LinkConfig::new(Duration::from_millis(10))
        .with_jitter(Duration::from_millis(120))
        .with_fifo(false);
    let mut sim = GlobeSim::new(Topology::uniform(link), 5);

    let server = sim.add_node();
    let library_site = sim.add_node();
    let librarian_site = sim.add_node();

    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()?;
    let object = ObjectSpec::new("/db/bibliography")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(library_site, StoreClass::ClientInitiated)
        .create(&mut sim)?;

    let librarian = sim.bind(object, librarian_site, BindOptions::new().read_node(server))?;
    let library = sim.bind(
        object,
        library_site,
        BindOptions::new().read_node(library_site),
    )?;

    // Two pipelined writes: add the record, then update its year field.
    let (w1, w2) = {
        let mut l = sim.handle(librarian);
        let w1 = l.issue_write(methods::put_page(
            "kermarrec98",
            &Page::html("title: Consistent Replicated Web Objects; year: ????"),
        ))?;
        let w2 = l.issue_write(methods::put_page(
            "kermarrec98",
            &Page::html("title: Consistent Replicated Web Objects; year: 1998"),
        ))?;
        (w1, w2)
    };
    println!("librarian pipelined: add record (w1), update year (w2)");

    sim.run_for(Duration::from_secs(5));
    assert!(sim.handle(librarian).result(w1).is_some());
    assert!(sim.handle(librarian).result(w2).is_some());

    // Whatever the arrival order at the library's replica, PRAM buffering
    // guarantees the final state includes the year update, never the
    // reverse order.
    let record = WebClient::attach(&mut sim, library)
        .get_page("kermarrec98")?
        .expect("record replicated");
    println!(
        "library replica serves: {:?}",
        std::str::from_utf8(&record.body)?
    );
    assert!(
        record.body.ends_with(b"year: 1998"),
        "field update must not be lost or reordered"
    );

    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history)?;
    globe_coherence::check::check_eventual(&history)?;
    println!("PRAM order held at every store despite the reordering network.");
    Ok(())
}
