//! Quickstart: one distributed Web object across four address spaces —
//! the topology of the paper's Fig. 1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic simulated internet: two regions, WAN links between.
    let mut sim = GlobeSim::new(Topology::wan(), 7);

    // Four address spaces (Fig. 1): a Web server, a mirror in the other
    // region, and two client machines.
    let server = sim.add_node_in(RegionId::new(0));
    let mirror = sim.add_node_in(RegionId::new(1));
    let alice_machine = sim.add_node_in(RegionId::new(1));
    let bob_machine = sim.add_node_in(RegionId::new(0));

    // One distributed shared Web object. The replication policy is the
    // object's own: PRAM coherence, immediate push of partial updates.
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()?;
    println!("Creating /home/globe with policy:\n{policy}\n");
    let object = ObjectSpec::new("/home/globe")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)?;

    // Binding installs a local object in each client's address space;
    // Alice's reads go to the nearby mirror, Bob's to the server.
    let alice = sim.bind(object, alice_machine, BindOptions::new().read_node(mirror))?;
    let bob = sim.bind(object, bob_machine, BindOptions::new().read_node(server))?;

    // Bob (the owner) publishes a page.
    WebClient::attach(&mut sim, bob).put_page(
        "index.html",
        Page::html("<h1>Globe: worldwide scalable Web objects</h1>"),
    )?;
    println!("Bob wrote index.html via the server at {}", sim.now());

    // Give the push a moment to cross the WAN, then Alice reads from the
    // mirror in her own region — fast and fresh.
    sim.run_for(Duration::from_millis(500));
    let page = WebClient::attach(&mut sim, alice)
        .get_page("index.html")?
        .expect("page must exist");
    println!(
        "Alice read {} bytes from the mirror at {}: {:?}",
        page.body.len(),
        sim.now(),
        std::str::from_utf8(&page.body)?
    );

    // The object's state is consistent everywhere.
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history)?;
    globe_coherence::check::check_eventual(&history)?;
    println!(
        "\nHistory: {} client ops, {} store applies — PRAM and convergence checks pass.",
        history.ops().len(),
        history.applies().len()
    );
    Ok(())
}
