//! End-to-end over real sockets: an HTTP/1.0 gateway fronting a
//! distributed Web object, so "existing Web browsers" can be the client
//! applications, exactly as in the paper's prototype (§4.2). GET and PUT
//! requests are translated into object invocations on a `GlobeTcp`
//! deployment (server + cache stores on their own threads).
//!
//! ```text
//! cargo run --example browser_gateway
//! # or point curl / a browser at the printed address while it runs
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use globe::prelude::*;
use globe::web::{Gateway, PageProvider};
use parking_lot::Mutex;

/// Bridges the gateway's fetch/store calls onto a bound Globe client.
struct GlobeBackedProvider {
    globe: Arc<Mutex<GlobeTcp>>,
    handle: ClientHandle,
}

impl PageProvider for GlobeBackedProvider {
    fn fetch(&mut self, path: &str) -> Option<Page> {
        let reply = self
            .globe
            .lock()
            .read_timeout(
                &self.handle,
                methods::get_page(path),
                Duration::from_secs(5),
            )
            .ok()?;
        globe_wire::from_bytes::<Option<Page>>(&reply).ok()?
    }

    fn store(&mut self, path: &str, page: Page) -> bool {
        self.globe
            .lock()
            .write_timeout(
                &self.handle,
                methods::put_page(path, &page),
                Duration::from_secs(5),
            )
            .is_ok()
    }
}

fn http(addr: std::net::SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the distributed object over real TCP sockets.
    let mut globe = GlobeTcp::new();
    let server = globe.add_node()?;
    let cache = globe.add_node()?;
    let gateway_node = globe.add_node()?;

    let mut policy = ReplicationPolicy::conference_page();
    policy.lazy_period = Duration::from_millis(300);
    let object = ObjectSpec::new("/conf/icdcs98")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut globe)?;

    // The gateway acts as a client bound through the cache, with RYW so
    // a browser that PUTs a page immediately GETs its own update.
    let handle = globe.bind(
        object,
        gateway_node,
        BindOptions::new()
            .read_node(cache)
            .guard(ClientModel::ReadYourWrites),
    )?;
    globe.start(&[gateway_node]);

    let globe = Arc::new(Mutex::new(globe));
    let mut gateway = Gateway::serve(GlobeBackedProvider {
        globe: Arc::clone(&globe),
        handle,
    })?;
    let addr = gateway.addr();
    println!("HTTP gateway for /conf/icdcs98 listening on http://{addr}/");

    // Act as the browser: publish the program page over HTTP…
    let body = "<h2>ICDCS'98 Program</h2><p>Session 4: Replication</p>";
    let put = format!(
        "PUT /program.html HTTP/1.0\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let resp = http(addr, &put)?;
    println!("PUT /program.html -> {}", resp.lines().next().unwrap_or(""));
    assert!(resp.starts_with("HTTP/1.0 204"));

    // …and read it back (RYW through the cache, over real sockets).
    let resp = http(addr, "GET /program.html HTTP/1.0\r\n\r\n")?;
    println!("GET /program.html -> {}", resp.lines().next().unwrap_or(""));
    assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
    assert!(resp.contains("Session 4: Replication"));

    // A missing page is a plain 404.
    let resp = http(addr, "GET /nope.html HTTP/1.0\r\n\r\n")?;
    println!("GET /nope.html    -> {}", resp.lines().next().unwrap_or(""));
    assert!(resp.starts_with("HTTP/1.0 404"));

    println!("\nBrowser → HTTP gateway → Globe object → replicated stores: all live.");
    gateway.shutdown();
    globe.lock().shutdown();
    Ok(())
}
