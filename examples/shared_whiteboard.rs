//! A shared white-board: the paper's example of a *future* Web
//! application needing concurrent writes and strong coherence ("a
//! groupware editor requires strong coherence at every store layer",
//! §3.2.2). Sequential coherence via the home-store sequencer.
//!
//! ```text
//! cargo run --example shared_whiteboard
//! ```

use std::time::Duration;

use globe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = GlobeSim::new(Topology::lan(), 23);
    let server = sim.add_node();
    let alice_site = sim.add_node();
    let bob_site = sim.add_node();

    let policy = ReplicationPolicy::whiteboard();
    println!("White-board policy:\n{policy}\n");
    let object = ObjectSpec::new("/apps/whiteboard")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(alice_site, StoreClass::ClientInitiated)
        .store(bob_site, StoreClass::ClientInitiated)
        .create(&mut sim)?;

    let alice = sim.bind(object, alice_site, BindOptions::new().read_node(alice_site))?;
    let bob = sim.bind(object, bob_site, BindOptions::new().read_node(bob_site))?;

    // Alice and Bob scribble concurrently on the same stroke list.
    for round in 0..5 {
        WebClient::attach(&mut sim, alice).patch_page("board", format!("A{round} ").as_bytes())?;
        WebClient::attach(&mut sim, bob).patch_page("board", format!("B{round} ").as_bytes())?;
    }
    sim.run_for(Duration::from_secs(2));

    // Sequential coherence: both replicas show the SAME interleaving.
    let at_alice = WebClient::attach(&mut sim, alice)
        .get_page("board")?
        .expect("board exists");
    let at_bob = WebClient::attach(&mut sim, bob)
        .get_page("board")?
        .expect("board exists");
    println!("Alice sees: {}", std::str::from_utf8(&at_alice.body)?);
    println!("Bob sees:   {}", std::str::from_utf8(&at_bob.body)?);
    assert_eq!(at_alice.body, at_bob.body, "sequential coherence violated");

    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_sequential(&history)?;
    println!(
        "\nSequential checker passed over {} applies: one global order, \
         consistent with both writers' program order.",
        history.applies().len()
    );
    Ok(())
}
